#include "la/csr_matrix.h"

#include <algorithm>

#include "la/width_dispatch.h"
#include "util/check.h"

namespace tpa::la {

template <typename V>
CsrMatrixT<V>::CsrMatrixT(uint32_t rows, uint32_t cols,
                          std::vector<uint64_t> row_offsets,
                          std::vector<uint32_t> col_indices,
                          std::vector<V> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)) {
  TPA_CHECK_EQ(row_offsets_.size(), static_cast<size_t>(rows_) + 1);
  TPA_CHECK_EQ(row_offsets_.front(), 0u);
  TPA_CHECK_EQ(row_offsets_.back(), col_indices_.size());
  TPA_CHECK_EQ(col_indices_.size(), values_.size());
  for (uint32_t r = 0; r < rows_; ++r) {
    TPA_CHECK_LE(row_offsets_[r], row_offsets_[r + 1]);
  }
  for (uint32_t c : col_indices_) TPA_CHECK_LT(c, cols_);
}

template <typename V>
void CsrMatrixT<V>::SpMv(const std::vector<V>& x, std::vector<V>& y) const {
  TPA_DCHECK(x.size() == cols_);
  y.resize(rows_);
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const V* values = values_.data();
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      sum += static_cast<double>(values[e]) *
             static_cast<double>(x[indices[e]]);
    }
    y[r] = static_cast<V>(sum);
  }
}

template <typename V>
void CsrMatrixT<V>::SpMvTranspose(const std::vector<V>& x,
                                  std::vector<V>& y) const {
  TPA_DCHECK(x.size() == rows_);
  y.assign(cols_, V{0});
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const V* values = values_.data();
  for (uint32_t r = 0; r < rows_; ++r) {
    const V xr = x[r];
    if (xr == V{0}) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      y[indices[e]] += values[e] * xr;
    }
  }
}

namespace {

/// The SpMM inner loops are specialized on the block width so the per-edge
/// update over B right-hand sides unrolls and vectorizes — with a runtime
/// bound the compiler keeps a loop (and an alias check) on the hottest
/// three instructions of the library.  Widths up to 16 cover every group
/// size the engine dispatches by default; wider blocks fall back to the
/// runtime loop.  Gathers accumulate in fp64 and round once on store;
/// scatters update in native V (see the class comment for the tiered
/// arithmetic contract).
template <size_t kWidth, typename V>
void SpMmRows(const uint64_t* offsets, const uint32_t* indices,
              const V* values, uint32_t rows, const DenseBlockT<V>& x,
              DenseBlockT<V>& y) {
  // The row accumulators are fp64 (a local register block), rounded to V
  // once on store — exactly SpMv's per-row accumulation, which is what
  // keeps vector b of the block bitwise-identical to the scalar kernel at
  // the fp32 tier too.  For V = double the store casts are no-ops and the
  // arithmetic is unchanged.
  for (uint32_t r = 0; r < rows; ++r) {
    double sums[kWidth];
    for (size_t b = 0; b < kWidth; ++b) sums[b] = 0.0;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const double w = values[e];
      const V* __restrict xr = x.RowPtr(indices[e]);
      for (size_t b = 0; b < kWidth; ++b) {
        sums[b] += w * static_cast<double>(xr[b]);
      }
    }
    V* __restrict out = y.RowPtr(r);
    for (size_t b = 0; b < kWidth; ++b) out[b] = static_cast<V>(sums[b]);
  }
}

template <typename V>
void SpMmRowsGeneric(const uint64_t* offsets, const uint32_t* indices,
                     const V* values, uint32_t rows, size_t num_vectors,
                     const DenseBlockT<V>& x, DenseBlockT<V>& y,
                     std::vector<double>& sums) {
  sums.resize(num_vectors);
  for (uint32_t r = 0; r < rows; ++r) {
    for (size_t b = 0; b < num_vectors; ++b) sums[b] = 0.0;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const double w = values[e];
      const V* __restrict xr = x.RowPtr(indices[e]);
      for (size_t b = 0; b < num_vectors; ++b) {
        sums[b] += w * static_cast<double>(xr[b]);
      }
    }
    V* __restrict out = y.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) out[b] = static_cast<V>(sums[b]);
  }
}

template <size_t kWidth, typename V>
void SpMmTransposeRows(const uint64_t* offsets, const uint32_t* indices,
                       const V* values, uint32_t rows, const DenseBlockT<V>& x,
                       DenseBlockT<V>& y) {
  // The scatter destinations are known kPrefetch edges ahead from the
  // column-index stream; prefetching them hides the block-row fetch
  // latency that dominates once the n×B output outgrows L2 (a B-wide block
  // row is up to two cache lines, vs one eighth of a line for scalar
  // SpMvTranspose).
  constexpr uint64_t kPrefetch = 16;
  const uint64_t nnz = offsets[rows];
  for (uint32_t r = 0; r < rows; ++r) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < kWidth; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      if (e + kPrefetch < nnz) {
        __builtin_prefetch(y.RowPtr(indices[e + kPrefetch]), 1);
      }
      const V w = values[e];
      V* __restrict yr = y.RowPtr(indices[e]);
      for (size_t b = 0; b < kWidth; ++b) yr[b] += w * xr[b];
    }
  }
}

template <typename V>
void SpMmTransposeRowsGeneric(const uint64_t* offsets, const uint32_t* indices,
                              const V* values, uint32_t rows,
                              size_t num_vectors, const DenseBlockT<V>& x,
                              DenseBlockT<V>& y) {
  for (uint32_t r = 0; r < rows; ++r) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < num_vectors; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const V w = values[e];
      V* __restrict yr = y.RowPtr(indices[e]);
      for (size_t b = 0; b < num_vectors; ++b) yr[b] += w * xr[b];
    }
  }
}

}  // namespace

template <typename V>
void CsrMatrixT<V>::SpMm(const DenseBlockT<V>& x, DenseBlockT<V>& y) const {
  TPA_DCHECK(x.rows() == cols_);
  const size_t num_vectors = x.num_vectors();
  y.Resize(rows_, num_vectors);
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const V* values = values_.data();
  DispatchWidth(
      num_vectors,
      [&]<size_t kWidth>() {
        SpMmRows<kWidth>(offsets, indices, values, rows_, x, y);
      },
      [&] {
        std::vector<double> sums;
        SpMmRowsGeneric(offsets, indices, values, rows_, num_vectors, x, y,
                        sums);
      });
}

template <typename V>
void CsrMatrixT<V>::SpMmTranspose(const DenseBlockT<V>& x,
                                  DenseBlockT<V>& y) const {
  TPA_DCHECK(x.rows() == rows_);
  const size_t num_vectors = x.num_vectors();
  y.Resize(cols_, num_vectors);
  y.SetZero();
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const V* values = values_.data();
  DispatchWidth(
      num_vectors,
      [&]<size_t kWidth>() {
        SpMmTransposeRows<kWidth>(offsets, indices, values, rows_, x, y);
      },
      [&] {
        SpMmTransposeRowsGeneric(offsets, indices, values, rows_, num_vectors,
                                 x, y);
      });
}

namespace {

/// Inner loop of the block frontier scatter, width-specialized like the
/// dense SpMmTranspose.  Touched destinations are collected once via the
/// epoch marks; the caller sorts them afterwards.
template <size_t kWidth, typename V>
void SpMmTransposeFrontierRows(const uint64_t* offsets, const uint32_t* indices,
                               const V* values,
                               std::span<const uint32_t> frontier,
                               const DenseBlockT<V>& x, DenseBlockT<V>& y,
                               std::vector<uint32_t>& next_frontier,
                               FrontierScratch& scratch) {
  for (uint32_t r : frontier) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < kWidth; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const uint32_t dest = indices[e];
      const V w = values[e];
      V* __restrict yr = y.RowPtr(dest);
      for (size_t b = 0; b < kWidth; ++b) yr[b] += w * xr[b];
      if (scratch.touched_epoch[dest] != scratch.epoch) {
        scratch.touched_epoch[dest] = scratch.epoch;
        next_frontier.push_back(dest);
      }
    }
  }
}

template <typename V>
void SpMmTransposeFrontierRowsGeneric(const uint64_t* offsets,
                                      const uint32_t* indices, const V* values,
                                      std::span<const uint32_t> frontier,
                                      size_t num_vectors,
                                      const DenseBlockT<V>& x,
                                      DenseBlockT<V>& y,
                                      std::vector<uint32_t>& next_frontier,
                                      FrontierScratch& scratch) {
  for (uint32_t r : frontier) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < num_vectors; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const uint32_t dest = indices[e];
      const V w = values[e];
      V* __restrict yr = y.RowPtr(dest);
      for (size_t b = 0; b < num_vectors; ++b) yr[b] += w * xr[b];
      if (scratch.touched_epoch[dest] != scratch.epoch) {
        scratch.touched_epoch[dest] = scratch.epoch;
        next_frontier.push_back(dest);
      }
    }
  }
}

/// Block-row zeroing of y[col_begin, col_end) — the range kernels own their
/// destination slice end to end.
template <typename V>
void ZeroBlockRows(DenseBlockT<V>& y, uint32_t begin, uint32_t end) {
  if (begin >= end) return;
  V* first = y.RowPtr(begin);
  std::fill(first, first + (end - begin) * y.num_vectors(), V{0});
}

template <size_t kWidth, typename V>
void SpMmTransposeRangeRows(const uint64_t* offsets, const uint32_t* indices,
                            const V* values, uint32_t rows,
                            const DenseBlockT<V>& x, DenseBlockT<V>& y,
                            uint32_t col_begin, uint32_t col_end) {
  for (uint32_t r = 0; r < rows; ++r) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < kWidth; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint32_t* row_begin = indices + offsets[r];
    const uint32_t* row_end = indices + offsets[r + 1];
    const uint32_t* lo = std::lower_bound(row_begin, row_end, col_begin);
    for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
      const V w = values[it - indices];
      V* __restrict yr = y.RowPtr(*it);
      for (size_t b = 0; b < kWidth; ++b) yr[b] += w * xr[b];
    }
  }
}

template <typename V>
void SpMmTransposeRangeRowsGeneric(const uint64_t* offsets,
                                   const uint32_t* indices, const V* values,
                                   uint32_t rows, size_t num_vectors,
                                   const DenseBlockT<V>& x, DenseBlockT<V>& y,
                                   uint32_t col_begin, uint32_t col_end) {
  for (uint32_t r = 0; r < rows; ++r) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < num_vectors; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint32_t* row_begin = indices + offsets[r];
    const uint32_t* row_end = indices + offsets[r + 1];
    const uint32_t* lo = std::lower_bound(row_begin, row_end, col_begin);
    for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
      const V w = values[it - indices];
      V* __restrict yr = y.RowPtr(*it);
      for (size_t b = 0; b < num_vectors; ++b) yr[b] += w * xr[b];
    }
  }
}

}  // namespace

template <typename V>
bool CsrMatrixT<V>::SpMvTransposeFrontier(const std::vector<V>& x,
                                          std::span<const uint32_t> frontier,
                                          double density_threshold,
                                          std::vector<V>& y,
                                          std::vector<uint32_t>& next_frontier,
                                          FrontierScratch& scratch) const {
  TPA_DCHECK(x.size() == rows_);
  if (static_cast<double>(frontier.size()) >
      density_threshold * static_cast<double>(rows_)) {
    SpMvTranspose(x, y);
    next_frontier.clear();
    return false;
  }
  TPA_DCHECK(y.size() == cols_);
  scratch.BeginEpoch(cols_);
  next_frontier.clear();
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const V* values = values_.data();
  for (uint32_t r : frontier) {
    const V xr = x[r];
    if (xr == V{0}) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const uint32_t dest = indices[e];
      y[dest] += values[e] * xr;
      if (scratch.touched_epoch[dest] != scratch.epoch) {
        scratch.touched_epoch[dest] = scratch.epoch;
        next_frontier.push_back(dest);
      }
    }
  }
  std::sort(next_frontier.begin(), next_frontier.end());
  return true;
}

template <typename V>
bool CsrMatrixT<V>::SpMmTransposeFrontier(const DenseBlockT<V>& x,
                                          std::span<const uint32_t> frontier,
                                          double density_threshold,
                                          DenseBlockT<V>& y,
                                          std::vector<uint32_t>& next_frontier,
                                          FrontierScratch& scratch) const {
  TPA_DCHECK(x.rows() == rows_);
  if (static_cast<double>(frontier.size()) >
      density_threshold * static_cast<double>(rows_)) {
    SpMmTranspose(x, y);
    next_frontier.clear();
    return false;
  }
  TPA_DCHECK(y.rows() == cols_);
  TPA_DCHECK(y.num_vectors() == x.num_vectors());
  scratch.BeginEpoch(cols_);
  next_frontier.clear();
  const size_t num_vectors = x.num_vectors();
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const V* values = values_.data();
  DispatchWidth(
      num_vectors,
      [&]<size_t kWidth>() {
        SpMmTransposeFrontierRows<kWidth>(offsets, indices, values, frontier,
                                          x, y, next_frontier, scratch);
      },
      [&] {
        SpMmTransposeFrontierRowsGeneric(offsets, indices, values, frontier,
                                         num_vectors, x, y, next_frontier,
                                         scratch);
      });
  std::sort(next_frontier.begin(), next_frontier.end());
  return true;
}

template <typename V>
std::vector<uint32_t> CsrMatrixT<V>::NnzBalancedColumnRanges(
    size_t num_parts) const {
  num_parts = std::max<size_t>(1, num_parts);
  std::vector<uint64_t> col_nnz(cols_, 0);
  for (uint32_t c : col_indices_) ++col_nnz[c];

  std::vector<uint32_t> boundaries;
  boundaries.reserve(num_parts + 1);
  boundaries.push_back(0);
  const uint64_t total = col_indices_.size();
  uint64_t seen = 0;
  for (uint32_t c = 0; c < cols_ && boundaries.size() < num_parts; ++c) {
    seen += col_nnz[c];
    // Cut after column c once this part has its proportional share.
    if (seen * num_parts >= total * boundaries.size()) {
      boundaries.push_back(c + 1);
    }
  }
  while (boundaries.size() <= num_parts) boundaries.push_back(cols_);
  boundaries.back() = cols_;
  return boundaries;
}

template <typename V>
void CsrMatrixT<V>::SpMvTransposeRange(const std::vector<V>& x,
                                       std::vector<V>& y, uint32_t col_begin,
                                       uint32_t col_end) const {
  TPA_DCHECK(x.size() == rows_);
  TPA_DCHECK(y.size() == cols_);
  TPA_DCHECK(col_begin <= col_end && col_end <= cols_);
  std::fill(y.begin() + col_begin, y.begin() + col_end, V{0});
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const V* values = values_.data();
  for (uint32_t r = 0; r < rows_; ++r) {
    const V xr = x[r];
    if (xr == V{0}) continue;
    const uint32_t* row_begin = indices + offsets[r];
    const uint32_t* row_end = indices + offsets[r + 1];
    const uint32_t* lo = std::lower_bound(row_begin, row_end, col_begin);
    for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
      y[*it] += values[it - indices] * xr;
    }
  }
}

template <typename V>
void CsrMatrixT<V>::SpMmTransposeRange(const DenseBlockT<V>& x,
                                       DenseBlockT<V>& y, uint32_t col_begin,
                                       uint32_t col_end) const {
  TPA_DCHECK(x.rows() == rows_);
  TPA_DCHECK(y.rows() == cols_);
  TPA_DCHECK(y.num_vectors() == x.num_vectors());
  TPA_DCHECK(col_begin <= col_end && col_end <= cols_);
  ZeroBlockRows(y, col_begin, col_end);
  const size_t num_vectors = x.num_vectors();
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const V* values = values_.data();
  DispatchWidth(
      num_vectors,
      [&]<size_t kWidth>() {
        SpMmTransposeRangeRows<kWidth>(offsets, indices, values, rows_, x, y,
                                       col_begin, col_end);
      },
      [&] {
        SpMmTransposeRangeRowsGeneric(offsets, indices, values, rows_,
                                      num_vectors, x, y, col_begin, col_end);
      });
}

template <typename V>
void CsrMatrixT<V>::SpMvTransposeParallel(const std::vector<V>& x,
                                          std::vector<V>& y,
                                          std::span<const uint32_t> boundaries,
                                          TaskRunner& runner) const {
  TPA_DCHECK(x.size() == rows_);
  TPA_CHECK_GE(boundaries.size(), 2u);
  TPA_CHECK_EQ(boundaries.front(), 0u);
  TPA_CHECK_EQ(boundaries.back(), cols_);
  y.resize(cols_);
  runner.ParallelFor(boundaries.size() - 1, [&](size_t p) {
    SpMvTransposeRange(x, y, boundaries[p], boundaries[p + 1]);
  });
}

template <typename V>
void CsrMatrixT<V>::SpMmTransposeParallel(const DenseBlockT<V>& x,
                                          DenseBlockT<V>& y,
                                          std::span<const uint32_t> boundaries,
                                          TaskRunner& runner) const {
  TPA_DCHECK(x.rows() == rows_);
  TPA_CHECK_GE(boundaries.size(), 2u);
  TPA_CHECK_EQ(boundaries.front(), 0u);
  TPA_CHECK_EQ(boundaries.back(), cols_);
  y.Resize(cols_, x.num_vectors());
  runner.ParallelFor(boundaries.size() - 1, [&](size_t p) {
    SpMmTransposeRange(x, y, boundaries[p], boundaries[p + 1]);
  });
}

template <typename V>
size_t CsrMatrixT<V>::SizeBytes() const {
  return row_offsets_.size() * sizeof(uint64_t) +
         col_indices_.size() * sizeof(uint32_t) + values_.size() * sizeof(V);
}

template class CsrMatrixT<double>;
template class CsrMatrixT<float>;

}  // namespace tpa::la
