#include "la/csr_matrix.h"

#include <algorithm>

#include "la/width_dispatch.h"
#include "util/check.h"

namespace tpa::la {

CsrMatrix::CsrMatrix(uint32_t rows, uint32_t cols,
                     std::vector<uint64_t> row_offsets,
                     std::vector<uint32_t> col_indices,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)) {
  TPA_CHECK_EQ(row_offsets_.size(), static_cast<size_t>(rows_) + 1);
  TPA_CHECK_EQ(row_offsets_.front(), 0u);
  TPA_CHECK_EQ(row_offsets_.back(), col_indices_.size());
  TPA_CHECK_EQ(col_indices_.size(), values_.size());
  for (uint32_t r = 0; r < rows_; ++r) {
    TPA_CHECK_LE(row_offsets_[r], row_offsets_[r + 1]);
  }
  for (uint32_t c : col_indices_) TPA_CHECK_LT(c, cols_);
}

void CsrMatrix::SpMv(const std::vector<double>& x,
                     std::vector<double>& y) const {
  TPA_DCHECK(x.size() == cols_);
  y.resize(rows_);
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      sum += values[e] * x[indices[e]];
    }
    y[r] = sum;
  }
}

void CsrMatrix::SpMvTranspose(const std::vector<double>& x,
                              std::vector<double>& y) const {
  TPA_DCHECK(x.size() == rows_);
  y.assign(cols_, 0.0);
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  for (uint32_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      y[indices[e]] += values[e] * xr;
    }
  }
}

namespace {

/// The SpMM inner loops are specialized on the block width so the per-edge
/// update over B right-hand sides unrolls and vectorizes — with a runtime
/// bound the compiler keeps a loop (and an alias check) on the hottest
/// three instructions of the library.  Widths up to 16 cover every group
/// size the engine dispatches by default; wider blocks fall back to the
/// runtime loop.
template <size_t kWidth>
void SpMmRows(const uint64_t* offsets, const uint32_t* indices,
              const double* values, uint32_t rows, const DenseBlock& x,
              DenseBlock& y) {
  for (uint32_t r = 0; r < rows; ++r) {
    double* __restrict sums = y.RowPtr(r);
    for (size_t b = 0; b < kWidth; ++b) sums[b] = 0.0;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const double w = values[e];
      const double* __restrict xr = x.RowPtr(indices[e]);
      for (size_t b = 0; b < kWidth; ++b) sums[b] += w * xr[b];
    }
  }
}

void SpMmRowsGeneric(const uint64_t* offsets, const uint32_t* indices,
                     const double* values, uint32_t rows, size_t num_vectors,
                     const DenseBlock& x, DenseBlock& y) {
  for (uint32_t r = 0; r < rows; ++r) {
    double* __restrict sums = y.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) sums[b] = 0.0;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const double w = values[e];
      const double* __restrict xr = x.RowPtr(indices[e]);
      for (size_t b = 0; b < num_vectors; ++b) sums[b] += w * xr[b];
    }
  }
}

template <size_t kWidth>
void SpMmTransposeRows(const uint64_t* offsets, const uint32_t* indices,
                       const double* values, uint32_t rows,
                       const DenseBlock& x, DenseBlock& y) {
  // The scatter destinations are known kPrefetch edges ahead from the
  // column-index stream; prefetching them hides the block-row fetch
  // latency that dominates once the n×B output outgrows L2 (a B-wide block
  // row is up to two cache lines, vs one eighth of a line for scalar
  // SpMvTranspose).
  constexpr uint64_t kPrefetch = 16;
  const uint64_t nnz = offsets[rows];
  for (uint32_t r = 0; r < rows; ++r) {
    const double* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < kWidth; ++b) any_nonzero |= (xr[b] != 0.0);
    if (!any_nonzero) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      if (e + kPrefetch < nnz) {
        __builtin_prefetch(y.RowPtr(indices[e + kPrefetch]), 1);
      }
      const double w = values[e];
      double* __restrict yr = y.RowPtr(indices[e]);
      for (size_t b = 0; b < kWidth; ++b) yr[b] += w * xr[b];
    }
  }
}

void SpMmTransposeRowsGeneric(const uint64_t* offsets, const uint32_t* indices,
                              const double* values, uint32_t rows,
                              size_t num_vectors, const DenseBlock& x,
                              DenseBlock& y) {
  for (uint32_t r = 0; r < rows; ++r) {
    const double* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < num_vectors; ++b) any_nonzero |= (xr[b] != 0.0);
    if (!any_nonzero) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const double w = values[e];
      double* __restrict yr = y.RowPtr(indices[e]);
      for (size_t b = 0; b < num_vectors; ++b) yr[b] += w * xr[b];
    }
  }
}

}  // namespace

void CsrMatrix::SpMm(const DenseBlock& x, DenseBlock& y) const {
  TPA_DCHECK(x.rows() == cols_);
  const size_t num_vectors = x.num_vectors();
  y.Resize(rows_, num_vectors);
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  DispatchWidth(
      num_vectors,
      [&]<size_t kWidth>() {
        SpMmRows<kWidth>(offsets, indices, values, rows_, x, y);
      },
      [&] {
        SpMmRowsGeneric(offsets, indices, values, rows_, num_vectors, x, y);
      });
}

void CsrMatrix::SpMmTranspose(const DenseBlock& x, DenseBlock& y) const {
  TPA_DCHECK(x.rows() == rows_);
  const size_t num_vectors = x.num_vectors();
  y.Resize(cols_, num_vectors);
  y.SetZero();
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  DispatchWidth(
      num_vectors,
      [&]<size_t kWidth>() {
        SpMmTransposeRows<kWidth>(offsets, indices, values, rows_, x, y);
      },
      [&] {
        SpMmTransposeRowsGeneric(offsets, indices, values, rows_, num_vectors,
                                 x, y);
      });
}

namespace {

/// Inner loop of the block frontier scatter, width-specialized like the
/// dense SpMmTranspose.  Touched destinations are collected once via the
/// epoch marks; the caller sorts them afterwards.
template <size_t kWidth>
void SpMmTransposeFrontierRows(const uint64_t* offsets, const uint32_t* indices,
                               const double* values,
                               std::span<const uint32_t> frontier,
                               const DenseBlock& x, DenseBlock& y,
                               std::vector<uint32_t>& next_frontier,
                               FrontierScratch& scratch) {
  for (uint32_t r : frontier) {
    const double* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < kWidth; ++b) any_nonzero |= (xr[b] != 0.0);
    if (!any_nonzero) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const uint32_t dest = indices[e];
      const double w = values[e];
      double* __restrict yr = y.RowPtr(dest);
      for (size_t b = 0; b < kWidth; ++b) yr[b] += w * xr[b];
      if (scratch.touched_epoch[dest] != scratch.epoch) {
        scratch.touched_epoch[dest] = scratch.epoch;
        next_frontier.push_back(dest);
      }
    }
  }
}

void SpMmTransposeFrontierRowsGeneric(const uint64_t* offsets,
                                      const uint32_t* indices,
                                      const double* values,
                                      std::span<const uint32_t> frontier,
                                      size_t num_vectors, const DenseBlock& x,
                                      DenseBlock& y,
                                      std::vector<uint32_t>& next_frontier,
                                      FrontierScratch& scratch) {
  for (uint32_t r : frontier) {
    const double* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < num_vectors; ++b) any_nonzero |= (xr[b] != 0.0);
    if (!any_nonzero) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const uint32_t dest = indices[e];
      const double w = values[e];
      double* __restrict yr = y.RowPtr(dest);
      for (size_t b = 0; b < num_vectors; ++b) yr[b] += w * xr[b];
      if (scratch.touched_epoch[dest] != scratch.epoch) {
        scratch.touched_epoch[dest] = scratch.epoch;
        next_frontier.push_back(dest);
      }
    }
  }
}

/// Block-row zeroing of y[col_begin, col_end) — the range kernels own their
/// destination slice end to end.
void ZeroBlockRows(DenseBlock& y, uint32_t begin, uint32_t end) {
  if (begin >= end) return;
  double* first = y.RowPtr(begin);
  std::fill(first, first + (end - begin) * y.num_vectors(), 0.0);
}

template <size_t kWidth>
void SpMmTransposeRangeRows(const uint64_t* offsets, const uint32_t* indices,
                            const double* values, uint32_t rows,
                            const DenseBlock& x, DenseBlock& y,
                            uint32_t col_begin, uint32_t col_end) {
  for (uint32_t r = 0; r < rows; ++r) {
    const double* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < kWidth; ++b) any_nonzero |= (xr[b] != 0.0);
    if (!any_nonzero) continue;
    const uint32_t* row_begin = indices + offsets[r];
    const uint32_t* row_end = indices + offsets[r + 1];
    const uint32_t* lo = std::lower_bound(row_begin, row_end, col_begin);
    for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
      const double w = values[it - indices];
      double* __restrict yr = y.RowPtr(*it);
      for (size_t b = 0; b < kWidth; ++b) yr[b] += w * xr[b];
    }
  }
}

void SpMmTransposeRangeRowsGeneric(const uint64_t* offsets,
                                   const uint32_t* indices,
                                   const double* values, uint32_t rows,
                                   size_t num_vectors, const DenseBlock& x,
                                   DenseBlock& y, uint32_t col_begin,
                                   uint32_t col_end) {
  for (uint32_t r = 0; r < rows; ++r) {
    const double* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < num_vectors; ++b) any_nonzero |= (xr[b] != 0.0);
    if (!any_nonzero) continue;
    const uint32_t* row_begin = indices + offsets[r];
    const uint32_t* row_end = indices + offsets[r + 1];
    const uint32_t* lo = std::lower_bound(row_begin, row_end, col_begin);
    for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
      const double w = values[it - indices];
      double* __restrict yr = y.RowPtr(*it);
      for (size_t b = 0; b < num_vectors; ++b) yr[b] += w * xr[b];
    }
  }
}

}  // namespace

bool CsrMatrix::SpMvTransposeFrontier(const std::vector<double>& x,
                                      std::span<const uint32_t> frontier,
                                      double density_threshold,
                                      std::vector<double>& y,
                                      std::vector<uint32_t>& next_frontier,
                                      FrontierScratch& scratch) const {
  TPA_DCHECK(x.size() == rows_);
  if (static_cast<double>(frontier.size()) >
      density_threshold * static_cast<double>(rows_)) {
    SpMvTranspose(x, y);
    next_frontier.clear();
    return false;
  }
  TPA_DCHECK(y.size() == cols_);
  scratch.BeginEpoch(cols_);
  next_frontier.clear();
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  for (uint32_t r : frontier) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const uint32_t dest = indices[e];
      y[dest] += values[e] * xr;
      if (scratch.touched_epoch[dest] != scratch.epoch) {
        scratch.touched_epoch[dest] = scratch.epoch;
        next_frontier.push_back(dest);
      }
    }
  }
  std::sort(next_frontier.begin(), next_frontier.end());
  return true;
}

bool CsrMatrix::SpMmTransposeFrontier(const DenseBlock& x,
                                      std::span<const uint32_t> frontier,
                                      double density_threshold, DenseBlock& y,
                                      std::vector<uint32_t>& next_frontier,
                                      FrontierScratch& scratch) const {
  TPA_DCHECK(x.rows() == rows_);
  if (static_cast<double>(frontier.size()) >
      density_threshold * static_cast<double>(rows_)) {
    SpMmTranspose(x, y);
    next_frontier.clear();
    return false;
  }
  TPA_DCHECK(y.rows() == cols_);
  TPA_DCHECK(y.num_vectors() == x.num_vectors());
  scratch.BeginEpoch(cols_);
  next_frontier.clear();
  const size_t num_vectors = x.num_vectors();
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  DispatchWidth(
      num_vectors,
      [&]<size_t kWidth>() {
        SpMmTransposeFrontierRows<kWidth>(offsets, indices, values, frontier,
                                          x, y, next_frontier, scratch);
      },
      [&] {
        SpMmTransposeFrontierRowsGeneric(offsets, indices, values, frontier,
                                         num_vectors, x, y, next_frontier,
                                         scratch);
      });
  std::sort(next_frontier.begin(), next_frontier.end());
  return true;
}

std::vector<uint32_t> CsrMatrix::NnzBalancedColumnRanges(
    size_t num_parts) const {
  num_parts = std::max<size_t>(1, num_parts);
  std::vector<uint64_t> col_nnz(cols_, 0);
  for (uint32_t c : col_indices_) ++col_nnz[c];

  std::vector<uint32_t> boundaries;
  boundaries.reserve(num_parts + 1);
  boundaries.push_back(0);
  const uint64_t total = col_indices_.size();
  uint64_t seen = 0;
  for (uint32_t c = 0; c < cols_ && boundaries.size() < num_parts; ++c) {
    seen += col_nnz[c];
    // Cut after column c once this part has its proportional share.
    if (seen * num_parts >= total * boundaries.size()) {
      boundaries.push_back(c + 1);
    }
  }
  while (boundaries.size() <= num_parts) boundaries.push_back(cols_);
  boundaries.back() = cols_;
  return boundaries;
}

void CsrMatrix::SpMvTransposeRange(const std::vector<double>& x,
                                   std::vector<double>& y, uint32_t col_begin,
                                   uint32_t col_end) const {
  TPA_DCHECK(x.size() == rows_);
  TPA_DCHECK(y.size() == cols_);
  TPA_DCHECK(col_begin <= col_end && col_end <= cols_);
  std::fill(y.begin() + col_begin, y.begin() + col_end, 0.0);
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  for (uint32_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const uint32_t* row_begin = indices + offsets[r];
    const uint32_t* row_end = indices + offsets[r + 1];
    const uint32_t* lo = std::lower_bound(row_begin, row_end, col_begin);
    for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
      y[*it] += values[it - indices] * xr;
    }
  }
}

void CsrMatrix::SpMmTransposeRange(const DenseBlock& x, DenseBlock& y,
                                   uint32_t col_begin, uint32_t col_end) const {
  TPA_DCHECK(x.rows() == rows_);
  TPA_DCHECK(y.rows() == cols_);
  TPA_DCHECK(y.num_vectors() == x.num_vectors());
  TPA_DCHECK(col_begin <= col_end && col_end <= cols_);
  ZeroBlockRows(y, col_begin, col_end);
  const size_t num_vectors = x.num_vectors();
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  DispatchWidth(
      num_vectors,
      [&]<size_t kWidth>() {
        SpMmTransposeRangeRows<kWidth>(offsets, indices, values, rows_, x, y,
                                       col_begin, col_end);
      },
      [&] {
        SpMmTransposeRangeRowsGeneric(offsets, indices, values, rows_,
                                      num_vectors, x, y, col_begin, col_end);
      });
}

void CsrMatrix::SpMvTransposeParallel(const std::vector<double>& x,
                                      std::vector<double>& y,
                                      std::span<const uint32_t> boundaries,
                                      TaskRunner& runner) const {
  TPA_DCHECK(x.size() == rows_);
  TPA_CHECK_GE(boundaries.size(), 2u);
  TPA_CHECK_EQ(boundaries.front(), 0u);
  TPA_CHECK_EQ(boundaries.back(), cols_);
  y.resize(cols_);
  runner.ParallelFor(boundaries.size() - 1, [&](size_t p) {
    SpMvTransposeRange(x, y, boundaries[p], boundaries[p + 1]);
  });
}

void CsrMatrix::SpMmTransposeParallel(const DenseBlock& x, DenseBlock& y,
                                      std::span<const uint32_t> boundaries,
                                      TaskRunner& runner) const {
  TPA_DCHECK(x.rows() == rows_);
  TPA_CHECK_GE(boundaries.size(), 2u);
  TPA_CHECK_EQ(boundaries.front(), 0u);
  TPA_CHECK_EQ(boundaries.back(), cols_);
  y.Resize(cols_, x.num_vectors());
  runner.ParallelFor(boundaries.size() - 1, [&](size_t p) {
    SpMmTransposeRange(x, y, boundaries[p], boundaries[p + 1]);
  });
}

size_t CsrMatrix::SizeBytes() const {
  return row_offsets_.size() * sizeof(uint64_t) +
         col_indices_.size() * sizeof(uint32_t) +
         values_.size() * sizeof(double);
}

}  // namespace tpa::la
