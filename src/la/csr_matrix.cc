#include "la/csr_matrix.h"

#include "la/width_dispatch.h"
#include "util/check.h"

namespace tpa::la {

CsrMatrix::CsrMatrix(uint32_t rows, uint32_t cols,
                     std::vector<uint64_t> row_offsets,
                     std::vector<uint32_t> col_indices,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)) {
  TPA_CHECK_EQ(row_offsets_.size(), static_cast<size_t>(rows_) + 1);
  TPA_CHECK_EQ(row_offsets_.front(), 0u);
  TPA_CHECK_EQ(row_offsets_.back(), col_indices_.size());
  TPA_CHECK_EQ(col_indices_.size(), values_.size());
  for (uint32_t r = 0; r < rows_; ++r) {
    TPA_CHECK_LE(row_offsets_[r], row_offsets_[r + 1]);
  }
  for (uint32_t c : col_indices_) TPA_CHECK_LT(c, cols_);
}

void CsrMatrix::SpMv(const std::vector<double>& x,
                     std::vector<double>& y) const {
  TPA_DCHECK(x.size() == cols_);
  y.resize(rows_);
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      sum += values[e] * x[indices[e]];
    }
    y[r] = sum;
  }
}

void CsrMatrix::SpMvTranspose(const std::vector<double>& x,
                              std::vector<double>& y) const {
  TPA_DCHECK(x.size() == rows_);
  y.assign(cols_, 0.0);
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  for (uint32_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      y[indices[e]] += values[e] * xr;
    }
  }
}

namespace {

/// The SpMM inner loops are specialized on the block width so the per-edge
/// update over B right-hand sides unrolls and vectorizes — with a runtime
/// bound the compiler keeps a loop (and an alias check) on the hottest
/// three instructions of the library.  Widths up to 16 cover every group
/// size the engine dispatches by default; wider blocks fall back to the
/// runtime loop.
template <size_t kWidth>
void SpMmRows(const uint64_t* offsets, const uint32_t* indices,
              const double* values, uint32_t rows, const DenseBlock& x,
              DenseBlock& y) {
  for (uint32_t r = 0; r < rows; ++r) {
    double* __restrict sums = y.RowPtr(r);
    for (size_t b = 0; b < kWidth; ++b) sums[b] = 0.0;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const double w = values[e];
      const double* __restrict xr = x.RowPtr(indices[e]);
      for (size_t b = 0; b < kWidth; ++b) sums[b] += w * xr[b];
    }
  }
}

void SpMmRowsGeneric(const uint64_t* offsets, const uint32_t* indices,
                     const double* values, uint32_t rows, size_t num_vectors,
                     const DenseBlock& x, DenseBlock& y) {
  for (uint32_t r = 0; r < rows; ++r) {
    double* __restrict sums = y.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) sums[b] = 0.0;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const double w = values[e];
      const double* __restrict xr = x.RowPtr(indices[e]);
      for (size_t b = 0; b < num_vectors; ++b) sums[b] += w * xr[b];
    }
  }
}

template <size_t kWidth>
void SpMmTransposeRows(const uint64_t* offsets, const uint32_t* indices,
                       const double* values, uint32_t rows,
                       const DenseBlock& x, DenseBlock& y) {
  // The scatter destinations are known kPrefetch edges ahead from the
  // column-index stream; prefetching them hides the block-row fetch
  // latency that dominates once the n×B output outgrows L2 (a B-wide block
  // row is up to two cache lines, vs one eighth of a line for scalar
  // SpMvTranspose).
  constexpr uint64_t kPrefetch = 16;
  const uint64_t nnz = offsets[rows];
  for (uint32_t r = 0; r < rows; ++r) {
    const double* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < kWidth; ++b) any_nonzero |= (xr[b] != 0.0);
    if (!any_nonzero) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      if (e + kPrefetch < nnz) {
        __builtin_prefetch(y.RowPtr(indices[e + kPrefetch]), 1);
      }
      const double w = values[e];
      double* __restrict yr = y.RowPtr(indices[e]);
      for (size_t b = 0; b < kWidth; ++b) yr[b] += w * xr[b];
    }
  }
}

void SpMmTransposeRowsGeneric(const uint64_t* offsets, const uint32_t* indices,
                              const double* values, uint32_t rows,
                              size_t num_vectors, const DenseBlock& x,
                              DenseBlock& y) {
  for (uint32_t r = 0; r < rows; ++r) {
    const double* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < num_vectors; ++b) any_nonzero |= (xr[b] != 0.0);
    if (!any_nonzero) continue;
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const double w = values[e];
      double* __restrict yr = y.RowPtr(indices[e]);
      for (size_t b = 0; b < num_vectors; ++b) yr[b] += w * xr[b];
    }
  }
}

}  // namespace

void CsrMatrix::SpMm(const DenseBlock& x, DenseBlock& y) const {
  TPA_DCHECK(x.rows() == cols_);
  const size_t num_vectors = x.num_vectors();
  y.Resize(rows_, num_vectors);
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  DispatchWidth(
      num_vectors,
      [&]<size_t kWidth>() {
        SpMmRows<kWidth>(offsets, indices, values, rows_, x, y);
      },
      [&] {
        SpMmRowsGeneric(offsets, indices, values, rows_, num_vectors, x, y);
      });
}

void CsrMatrix::SpMmTranspose(const DenseBlock& x, DenseBlock& y) const {
  TPA_DCHECK(x.rows() == rows_);
  const size_t num_vectors = x.num_vectors();
  y.Resize(cols_, num_vectors);
  y.SetZero();
  const uint64_t* offsets = row_offsets_.data();
  const uint32_t* indices = col_indices_.data();
  const double* values = values_.data();
  DispatchWidth(
      num_vectors,
      [&]<size_t kWidth>() {
        SpMmTransposeRows<kWidth>(offsets, indices, values, rows_, x, y);
      },
      [&] {
        SpMmTransposeRowsGeneric(offsets, indices, values, rows_, num_vectors,
                                 x, y);
      });
}

size_t CsrMatrix::SizeBytes() const {
  return row_offsets_.size() * sizeof(uint64_t) +
         col_indices_.size() * sizeof(uint32_t) +
         values_.size() * sizeof(double);
}

}  // namespace tpa::la
