#include "la/csr_matrix.h"

#include <algorithm>

#include "la/width_dispatch.h"
#include "util/check.h"

namespace tpa::la {

CsrStructure MakeCsrStructure(uint32_t rows, uint32_t cols,
                              std::vector<uint64_t> row_offsets,
                              std::vector<uint32_t> col_indices) {
  TPA_CHECK_EQ(row_offsets.size(), static_cast<size_t>(rows) + 1);
  TPA_CHECK_EQ(row_offsets.front(), 0u);
  TPA_CHECK_EQ(row_offsets.back(), col_indices.size());
  for (uint32_t r = 0; r < rows; ++r) {
    TPA_CHECK_LE(row_offsets[r], row_offsets[r + 1]);
  }
  for (uint32_t c : col_indices) TPA_CHECK_LT(c, cols);
  CsrStructure structure;
  structure.rows = rows;
  structure.cols = cols;
  structure.row_offsets = SharedArray<uint64_t>(std::move(row_offsets));
  structure.col_indices = SharedArray<uint32_t>(std::move(col_indices));
  return structure;
}

StatusOr<CsrStructure> MakeCsrStructureChecked(
    uint32_t rows, uint32_t cols, std::vector<uint64_t> row_offsets,
    std::vector<uint32_t> col_indices) {
  if (row_offsets.size() != static_cast<size_t>(rows) + 1) {
    return InvalidArgumentError(
        "row_offsets has " + std::to_string(row_offsets.size()) +
        " entries, want rows+1 = " +
        std::to_string(static_cast<size_t>(rows) + 1));
  }
  if (row_offsets.front() != 0) {
    return InvalidArgumentError("row_offsets[0] = " +
                                std::to_string(row_offsets.front()) +
                                ", want 0");
  }
  if (row_offsets.back() != col_indices.size()) {
    return InvalidArgumentError(
        "row_offsets[rows] = " + std::to_string(row_offsets.back()) +
        " does not match col_indices.size() = " +
        std::to_string(col_indices.size()));
  }
  for (uint32_t r = 0; r < rows; ++r) {
    if (row_offsets[r] > row_offsets[r + 1]) {
      return InvalidArgumentError(
          "row_offsets not monotone at row " + std::to_string(r) + ": " +
          std::to_string(row_offsets[r]) + " > " +
          std::to_string(row_offsets[r + 1]));
    }
  }
  for (size_t i = 0; i < col_indices.size(); ++i) {
    if (col_indices[i] >= cols) {
      return InvalidArgumentError("col_indices[" + std::to_string(i) + "] = " +
                                  std::to_string(col_indices[i]) +
                                  " out of range for " + std::to_string(cols) +
                                  " columns");
    }
  }
  CsrStructure structure;
  structure.rows = rows;
  structure.cols = cols;
  structure.row_offsets = SharedArray<uint64_t>(std::move(row_offsets));
  structure.col_indices = SharedArray<uint32_t>(std::move(col_indices));
  return structure;
}

size_t CsrStructureBytes(const CsrStructure& structure) {
  return structure.row_offsets.size() * sizeof(uint64_t) +
         structure.col_indices.size() * sizeof(uint32_t);
}

namespace {

/// Value policies: how a kernel obtains the weight of an edge.  Each kernel
/// loop is templated on one of these, so the value-free modes compile to
/// loops with no value load at all — kRowConstant additionally advertises
/// itself via kRowConstantWeight so the loop can hoist the per-row product
/// out of the edge sweep (the hoisted product is computed by the identical
/// multiplication the explicit kernel performs per edge, so every
/// destination accumulates bitwise-identical contributions in the identical
/// order).
template <typename V>
struct ExplicitVals {
  static constexpr bool kRowConstantWeight = false;
  const V* values;
  V Row(uint32_t) const { return V{}; }  // unused
  V Edge(uint64_t e, uint32_t) const { return values[e]; }
};

/// Synthesized 1/row-nnz — no array.  The expression matches the one that
/// materializes explicit normalized weights (fp64 reciprocal, one rounding
/// to V), so the synthesized weight is bitwise-equal to the stored one.
/// Row() must not be called on an empty row (1/0); the loops guard.
template <typename V>
struct SynthRowVals {
  static constexpr bool kRowConstantWeight = true;
  const uint64_t* offsets;
  V Row(uint32_t r) const {
    return static_cast<V>(1.0 /
                          static_cast<double>(offsets[r + 1] - offsets[r]));
  }
  V Edge(uint64_t, uint32_t) const { return V{}; }  // unused
};

template <typename V>
struct RowScaleVals {
  static constexpr bool kRowConstantWeight = true;
  const V* scales;  // size rows
  V Row(uint32_t r) const { return scales[r]; }
  V Edge(uint64_t, uint32_t) const { return V{}; }  // unused
};

template <typename V>
struct ColScaleVals {
  static constexpr bool kRowConstantWeight = false;
  const V* scales;  // size cols
  V Row(uint32_t) const { return V{}; }  // unused
  V Edge(uint64_t, uint32_t col) const { return scales[col]; }
};

/// Invokes f with the value policy matching `mode` — the single runtime
/// branch per kernel call; everything inside is mode-specialized code.
template <typename V, typename F>
void DispatchVals(CsrValueMode mode, const SharedArray<V>& values,
                  const SharedArray<V>& scales, const uint64_t* offsets,
                  F&& f) {
  switch (mode) {
    case CsrValueMode::kExplicit:
      f(ExplicitVals<V>{values.data()});
      return;
    case CsrValueMode::kRowConstant:
      if (scales.empty()) {
        f(SynthRowVals<V>{offsets});
      } else {
        f(RowScaleVals<V>{scales.data()});
      }
      return;
    case CsrValueMode::kColumnScale:
      f(ColScaleVals<V>{scales.data()});
      return;
  }
}

/// Prefetch distance for the dense kernels' random-access operand (the
/// gathered x row / scattered y row).  The column-index stream names each
/// destination this many edges in advance; issuing the prefetch there hides
/// the L2-missing latency that otherwise dominates once the vector operand
/// outgrows L2 — and is what the kernels' per-edge cost is mostly made of on
/// large graphs (the streamed CSR bytes are the smaller part, which is also
/// why value-free storage only pays off once this latency is hidden).
constexpr uint64_t kPrefetchDistance = 16;

/// Full gather of one row in SpMv's accumulation order: fp64 sum over the
/// row's edges.  Shared by the dense gather, the block-width-1 case, and
/// the frontier gather head (whose bitwise contract is exactly "this row,
/// computed as the dense kernel computes it").  `prefetch_nnz` bounds a
/// look-ahead prefetch of x[indices[e + kPrefetchDistance]] — the dense
/// caller passes the matrix nnz (the global edge stream is contiguous
/// across rows, so the look-ahead lands in rows about to be gathered); the
/// frontier caller passes 0 (disabled: its candidate rows are sparse, so
/// edges past the row end belong to rows that may never be visited).
template <typename V, typename Vals>
double GatherRow(const uint64_t* offsets, const uint32_t* indices, Vals vals,
                 const V* x, uint32_t r, uint64_t prefetch_nnz = 0) {
  const uint64_t begin = offsets[r];
  const uint64_t end = offsets[r + 1];
  double sum = 0.0;
  if constexpr (Vals::kRowConstantWeight) {
    if (begin == end) return 0.0;
    const double w = static_cast<double>(vals.Row(r));
    for (uint64_t e = begin; e < end; ++e) {
      if (e + kPrefetchDistance < prefetch_nnz) {
        __builtin_prefetch(&x[indices[e + kPrefetchDistance]], 0);
      }
      sum += w * static_cast<double>(x[indices[e]]);
    }
  } else {
    for (uint64_t e = begin; e < end; ++e) {
      if (e + kPrefetchDistance < prefetch_nnz) {
        __builtin_prefetch(&x[indices[e + kPrefetchDistance]], 0);
      }
      sum += static_cast<double>(vals.Edge(e, indices[e])) *
             static_cast<double>(x[indices[e]]);
    }
  }
  return sum;
}

template <typename V, typename Vals>
void SpMvLoop(const uint64_t* offsets, const uint32_t* indices, Vals vals,
              uint32_t rows, uint64_t nnz, const V* x, V* y) {
  for (uint32_t r = 0; r < rows; ++r) {
    y[r] = static_cast<V>(GatherRow(offsets, indices, vals, x, r, nnz));
  }
}

template <typename V, typename Vals>
void SpMvTransposeLoop(const uint64_t* offsets, const uint32_t* indices,
                       Vals vals, uint32_t rows, uint64_t nnz, const V* x,
                       V* y) {
  // Same destination look-ahead as the block scatter (SpMmTransposeRows):
  // the upcoming y lines are named by the index stream, and prefetching
  // them is what keeps the loop bandwidth-bound instead of latency-bound.
  for (uint32_t r = 0; r < rows; ++r) {
    const V xr = x[r];
    if (xr == V{0}) continue;
    const uint64_t begin = offsets[r];
    const uint64_t end = offsets[r + 1];
    if constexpr (Vals::kRowConstantWeight) {
      if (begin == end) continue;
      const V p = vals.Row(r) * xr;
      for (uint64_t e = begin; e < end; ++e) {
        if (e + kPrefetchDistance < nnz) {
          __builtin_prefetch(&y[indices[e + kPrefetchDistance]], 1);
        }
        y[indices[e]] += p;
      }
    } else {
      for (uint64_t e = begin; e < end; ++e) {
        if (e + kPrefetchDistance < nnz) {
          __builtin_prefetch(&y[indices[e + kPrefetchDistance]], 1);
        }
        y[indices[e]] += vals.Edge(e, indices[e]) * xr;
      }
    }
  }
}

/// The SpMM inner loops are specialized on the block width so the per-edge
/// update over B right-hand sides unrolls and vectorizes — with a runtime
/// bound the compiler keeps a loop (and an alias check) on the hottest
/// three instructions of the library.  Widths up to 16 cover every group
/// size the engine dispatches by default; wider blocks fall back to the
/// runtime loop.  Gathers accumulate in fp64 and round once on store;
/// scatters update in native V (see the class comment for the tiered
/// arithmetic contract).
template <size_t kWidth, typename V, typename Vals>
void SpMmRows(const uint64_t* offsets, const uint32_t* indices, Vals vals,
              uint32_t rows, uint64_t nnz, const DenseBlockT<V>& x,
              DenseBlockT<V>& y) {
  // The row accumulators are fp64 (a local register block), rounded to V
  // once on store — exactly SpMv's per-row accumulation, which is what
  // keeps vector b of the block bitwise-identical to the scalar kernel at
  // the fp32 tier too.  For V = double the store casts are no-ops and the
  // arithmetic is unchanged.
  for (uint32_t r = 0; r < rows; ++r) {
    double sums[kWidth];
    for (size_t b = 0; b < kWidth; ++b) sums[b] = 0.0;
    const uint64_t begin = offsets[r];
    const uint64_t end = offsets[r + 1];
    if constexpr (Vals::kRowConstantWeight) {
      if (begin != end) {
        const double w = static_cast<double>(vals.Row(r));
        for (uint64_t e = begin; e < end; ++e) {
          if (e + kPrefetchDistance < nnz) {
            __builtin_prefetch(x.RowPtr(indices[e + kPrefetchDistance]), 0);
          }
          const V* __restrict xr = x.RowPtr(indices[e]);
          for (size_t b = 0; b < kWidth; ++b) {
            sums[b] += w * static_cast<double>(xr[b]);
          }
        }
      }
    } else {
      for (uint64_t e = begin; e < end; ++e) {
        if (e + kPrefetchDistance < nnz) {
          __builtin_prefetch(x.RowPtr(indices[e + kPrefetchDistance]), 0);
        }
        const double w = vals.Edge(e, indices[e]);
        const V* __restrict xr = x.RowPtr(indices[e]);
        for (size_t b = 0; b < kWidth; ++b) {
          sums[b] += w * static_cast<double>(xr[b]);
        }
      }
    }
    V* __restrict out = y.RowPtr(r);
    for (size_t b = 0; b < kWidth; ++b) out[b] = static_cast<V>(sums[b]);
  }
}

template <typename V, typename Vals>
void SpMmRowsGeneric(const uint64_t* offsets, const uint32_t* indices,
                     Vals vals, uint32_t rows, uint64_t nnz,
                     size_t num_vectors, const DenseBlockT<V>& x,
                     DenseBlockT<V>& y, std::vector<double>& sums) {
  sums.resize(num_vectors);
  for (uint32_t r = 0; r < rows; ++r) {
    for (size_t b = 0; b < num_vectors; ++b) sums[b] = 0.0;
    const uint64_t begin = offsets[r];
    const uint64_t end = offsets[r + 1];
    if constexpr (Vals::kRowConstantWeight) {
      if (begin != end) {
        const double w = static_cast<double>(vals.Row(r));
        for (uint64_t e = begin; e < end; ++e) {
          if (e + kPrefetchDistance < nnz) {
            __builtin_prefetch(x.RowPtr(indices[e + kPrefetchDistance]), 0);
          }
          const V* __restrict xr = x.RowPtr(indices[e]);
          for (size_t b = 0; b < num_vectors; ++b) {
            sums[b] += w * static_cast<double>(xr[b]);
          }
        }
      }
    } else {
      for (uint64_t e = begin; e < end; ++e) {
        if (e + kPrefetchDistance < nnz) {
          __builtin_prefetch(x.RowPtr(indices[e + kPrefetchDistance]), 0);
        }
        const double w = vals.Edge(e, indices[e]);
        const V* __restrict xr = x.RowPtr(indices[e]);
        for (size_t b = 0; b < num_vectors; ++b) {
          sums[b] += w * static_cast<double>(xr[b]);
        }
      }
    }
    V* __restrict out = y.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) out[b] = static_cast<V>(sums[b]);
  }
}

template <size_t kWidth, typename V, typename Vals>
void SpMmTransposeRows(const uint64_t* offsets, const uint32_t* indices,
                       Vals vals, uint32_t rows, uint64_t nnz,
                       const DenseBlockT<V>& x, DenseBlockT<V>& y) {
  // The scatter destinations are known kPrefetch edges ahead from the
  // column-index stream; prefetching them hides the block-row fetch
  // latency that dominates once the n×B output outgrows L2 (a B-wide block
  // row is up to two cache lines, vs one eighth of a line for scalar
  // SpMvTranspose).
  constexpr uint64_t kPrefetch = kPrefetchDistance;
  for (uint32_t r = 0; r < rows; ++r) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < kWidth; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint64_t begin = offsets[r];
    const uint64_t end = offsets[r + 1];
    if constexpr (Vals::kRowConstantWeight) {
      if (begin == end) continue;
      // Hoist the per-row products: the inner loop is then a pure
      // index-streamed add — no value load, no multiply.
      V p[kWidth];
      const V w = vals.Row(r);
      for (size_t b = 0; b < kWidth; ++b) p[b] = w * xr[b];
      for (uint64_t e = begin; e < end; ++e) {
        if (e + kPrefetch < nnz) {
          __builtin_prefetch(y.RowPtr(indices[e + kPrefetch]), 1);
        }
        V* __restrict yr = y.RowPtr(indices[e]);
        for (size_t b = 0; b < kWidth; ++b) yr[b] += p[b];
      }
    } else {
      for (uint64_t e = begin; e < end; ++e) {
        if (e + kPrefetch < nnz) {
          __builtin_prefetch(y.RowPtr(indices[e + kPrefetch]), 1);
        }
        const V w = vals.Edge(e, indices[e]);
        V* __restrict yr = y.RowPtr(indices[e]);
        for (size_t b = 0; b < kWidth; ++b) yr[b] += w * xr[b];
      }
    }
  }
}

template <typename V, typename Vals>
void SpMmTransposeRowsGeneric(const uint64_t* offsets, const uint32_t* indices,
                              Vals vals, uint32_t rows, size_t num_vectors,
                              const DenseBlockT<V>& x, DenseBlockT<V>& y) {
  std::vector<V> p(num_vectors);
  for (uint32_t r = 0; r < rows; ++r) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < num_vectors; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint64_t begin = offsets[r];
    const uint64_t end = offsets[r + 1];
    if constexpr (Vals::kRowConstantWeight) {
      if (begin == end) continue;
      const V w = vals.Row(r);
      for (size_t b = 0; b < num_vectors; ++b) p[b] = w * xr[b];
      for (uint64_t e = begin; e < end; ++e) {
        V* __restrict yr = y.RowPtr(indices[e]);
        for (size_t b = 0; b < num_vectors; ++b) yr[b] += p[b];
      }
    } else {
      for (uint64_t e = begin; e < end; ++e) {
        const V w = vals.Edge(e, indices[e]);
        V* __restrict yr = y.RowPtr(indices[e]);
        for (size_t b = 0; b < num_vectors; ++b) yr[b] += w * xr[b];
      }
    }
  }
}

}  // namespace

template <typename V>
CsrMatrixT<V>::CsrMatrixT(uint32_t rows, uint32_t cols,
                          std::vector<uint64_t> row_offsets,
                          std::vector<uint32_t> col_indices,
                          std::vector<V> values)
    : structure_(MakeCsrStructure(rows, cols, std::move(row_offsets),
                                  std::move(col_indices))),
      mode_(CsrValueMode::kExplicit),
      values_(std::move(values)) {
  TPA_CHECK_EQ(structure_.nnz(), values_.size());
}

template <typename V>
CsrMatrixT<V>::CsrMatrixT(uint32_t rows, uint32_t cols,
                          std::vector<uint64_t> row_offsets,
                          std::vector<uint32_t> col_indices, CsrValueMode mode,
                          std::vector<V> scales)
    : CsrMatrixT(MakeCsrStructure(rows, cols, std::move(row_offsets),
                                  std::move(col_indices)),
                 mode, std::move(scales)) {}

template <typename V>
CsrMatrixT<V>::CsrMatrixT(CsrStructure structure, SharedArray<V> values)
    : structure_(std::move(structure)),
      mode_(CsrValueMode::kExplicit),
      values_(std::move(values)) {
  TPA_CHECK(structure_.row_offsets.data() != nullptr);
  TPA_CHECK_EQ(structure_.nnz(), values_.size());
}

template <typename V>
CsrMatrixT<V>::CsrMatrixT(CsrStructure structure, CsrValueMode mode,
                          SharedArray<V> scales)
    : structure_(std::move(structure)), mode_(mode) {
  TPA_CHECK(structure_.row_offsets.data() != nullptr);
  if (mode_ == CsrValueMode::kExplicit) {
    // Overload resolution lands here from the legacy (rows, cols, offsets,
    // indices, values) shape when `values` is spelled `{}`: an empty braced
    // list value-initializes CsrValueMode to kExplicit.  Treat the trailing
    // vector as the per-edge value array so that spelling keeps working.
    values_ = std::move(scales);
    TPA_CHECK_EQ(structure_.nnz(), values_.size());
    return;
  }
  scales_ = std::move(scales);
  if (mode_ == CsrValueMode::kRowConstant) {
    TPA_CHECK(scales_.empty() ||
              scales_.size() == static_cast<size_t>(structure_.rows));
  } else {
    TPA_CHECK_EQ(scales_.size(), static_cast<size_t>(structure_.cols));
  }
}

template <typename V>
std::span<const V> CsrMatrixT<V>::RowValues(uint32_t r) const {
  TPA_CHECK(mode_ == CsrValueMode::kExplicit);
  const uint64_t* offsets = structure_.row_offsets.data();
  return {values_.data() + offsets[r], values_.data() + offsets[r + 1]};
}

template <typename V>
V CsrMatrixT<V>::EdgeWeight(uint32_t r, uint64_t e) const {
  switch (mode_) {
    case CsrValueMode::kExplicit:
      return values_[e];
    case CsrValueMode::kRowConstant:
      return scales_.empty()
                 ? static_cast<V>(1.0 / static_cast<double>(RowNnz(r)))
                 : scales_[r];
    case CsrValueMode::kColumnScale:
      return scales_[structure_.col_indices[e]];
  }
  return V{};  // unreachable
}

template <typename V>
void CsrMatrixT<V>::SpMv(const std::vector<V>& x, std::vector<V>& y) const {
  TPA_DCHECK(x.size() == cols());
  y.resize(rows());
  if (rows() == 0) return;
  const uint64_t* offsets = structure_.row_offsets.data();
  const uint32_t* indices = structure_.col_indices.data();
  DispatchVals<V>(mode_, values_, scales_, offsets, [&](auto vals) {
    SpMvLoop(offsets, indices, vals, rows(), nnz(), x.data(), y.data());
  });
}

template <typename V>
void CsrMatrixT<V>::SpMvTranspose(const std::vector<V>& x,
                                  std::vector<V>& y) const {
  TPA_DCHECK(x.size() == rows());
  y.assign(cols(), V{0});
  if (rows() == 0) return;
  const uint64_t* offsets = structure_.row_offsets.data();
  const uint32_t* indices = structure_.col_indices.data();
  DispatchVals<V>(mode_, values_, scales_, offsets, [&](auto vals) {
    SpMvTransposeLoop(offsets, indices, vals, rows(), nnz(), x.data(),
                      y.data());
  });
}

template <typename V>
void CsrMatrixT<V>::SpMm(const DenseBlockT<V>& x, DenseBlockT<V>& y) const {
  TPA_DCHECK(x.rows() == cols());
  const size_t num_vectors = x.num_vectors();
  y.Resize(rows(), num_vectors);
  if (rows() == 0) return;
  const uint64_t* offsets = structure_.row_offsets.data();
  const uint32_t* indices = structure_.col_indices.data();
  DispatchVals<V>(mode_, values_, scales_, offsets, [&](auto vals) {
    DispatchWidth(
        num_vectors,
        [&]<size_t kWidth>() {
          SpMmRows<kWidth>(offsets, indices, vals, rows(), nnz(), x, y);
        },
        [&] {
          std::vector<double> sums;
          SpMmRowsGeneric(offsets, indices, vals, rows(), nnz(), num_vectors,
                          x, y, sums);
        });
  });
}

template <typename V>
void CsrMatrixT<V>::SpMmTranspose(const DenseBlockT<V>& x,
                                  DenseBlockT<V>& y) const {
  TPA_DCHECK(x.rows() == rows());
  const size_t num_vectors = x.num_vectors();
  y.Resize(cols(), num_vectors);
  y.SetZero();
  if (rows() == 0) return;
  const uint64_t* offsets = structure_.row_offsets.data();
  const uint32_t* indices = structure_.col_indices.data();
  DispatchVals<V>(mode_, values_, scales_, offsets, [&](auto vals) {
    DispatchWidth(
        num_vectors,
        [&]<size_t kWidth>() {
          SpMmTransposeRows<kWidth>(offsets, indices, vals, rows(), nnz(), x,
                                    y);
        },
        [&] {
          SpMmTransposeRowsGeneric(offsets, indices, vals, rows(), num_vectors,
                                   x, y);
        });
  });
}

namespace {

/// Inner loop of the block frontier scatter, width-specialized like the
/// dense SpMmTranspose.  Touched destinations are collected once via the
/// epoch marks; the caller sorts them afterwards.
template <size_t kWidth, typename V, typename Vals>
void SpMmTransposeFrontierRows(const uint64_t* offsets, const uint32_t* indices,
                               Vals vals, std::span<const uint32_t> frontier,
                               const DenseBlockT<V>& x, DenseBlockT<V>& y,
                               std::vector<uint32_t>& next_frontier,
                               FrontierScratch& scratch) {
  for (uint32_t r : frontier) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < kWidth; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint64_t begin = offsets[r];
    const uint64_t end = offsets[r + 1];
    if constexpr (Vals::kRowConstantWeight) {
      if (begin == end) continue;
      V p[kWidth];
      const V w = vals.Row(r);
      for (size_t b = 0; b < kWidth; ++b) p[b] = w * xr[b];
      for (uint64_t e = begin; e < end; ++e) {
        const uint32_t dest = indices[e];
        V* __restrict yr = y.RowPtr(dest);
        for (size_t b = 0; b < kWidth; ++b) yr[b] += p[b];
        if (scratch.touched_epoch[dest] != scratch.epoch) {
          scratch.touched_epoch[dest] = scratch.epoch;
          next_frontier.push_back(dest);
        }
      }
    } else {
      for (uint64_t e = begin; e < end; ++e) {
        const uint32_t dest = indices[e];
        const V w = vals.Edge(e, dest);
        V* __restrict yr = y.RowPtr(dest);
        for (size_t b = 0; b < kWidth; ++b) yr[b] += w * xr[b];
        if (scratch.touched_epoch[dest] != scratch.epoch) {
          scratch.touched_epoch[dest] = scratch.epoch;
          next_frontier.push_back(dest);
        }
      }
    }
  }
}

template <typename V, typename Vals>
void SpMmTransposeFrontierRowsGeneric(const uint64_t* offsets,
                                      const uint32_t* indices, Vals vals,
                                      std::span<const uint32_t> frontier,
                                      size_t num_vectors,
                                      const DenseBlockT<V>& x,
                                      DenseBlockT<V>& y,
                                      std::vector<uint32_t>& next_frontier,
                                      FrontierScratch& scratch) {
  std::vector<V> p(num_vectors);
  for (uint32_t r : frontier) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < num_vectors; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint64_t begin = offsets[r];
    const uint64_t end = offsets[r + 1];
    if constexpr (Vals::kRowConstantWeight) {
      if (begin == end) continue;
      const V w = vals.Row(r);
      for (size_t b = 0; b < num_vectors; ++b) p[b] = w * xr[b];
      for (uint64_t e = begin; e < end; ++e) {
        const uint32_t dest = indices[e];
        V* __restrict yr = y.RowPtr(dest);
        for (size_t b = 0; b < num_vectors; ++b) yr[b] += p[b];
        if (scratch.touched_epoch[dest] != scratch.epoch) {
          scratch.touched_epoch[dest] = scratch.epoch;
          next_frontier.push_back(dest);
        }
      }
    } else {
      for (uint64_t e = begin; e < end; ++e) {
        const uint32_t dest = indices[e];
        const V w = vals.Edge(e, dest);
        V* __restrict yr = y.RowPtr(dest);
        for (size_t b = 0; b < num_vectors; ++b) yr[b] += w * xr[b];
        if (scratch.touched_epoch[dest] != scratch.epoch) {
          scratch.touched_epoch[dest] = scratch.epoch;
          next_frontier.push_back(dest);
        }
      }
    }
  }
}

/// Inner loop of the block frontier gather: each candidate row is gathered
/// in full, in SpMm's accumulation order — bitwise-identical per row to the
/// dense kernel by construction.
template <size_t kWidth, typename V, typename Vals>
void SpMmFrontierRows(const uint64_t* offsets, const uint32_t* indices,
                      Vals vals, std::span<const uint32_t> candidates,
                      const DenseBlockT<V>& x, DenseBlockT<V>& y,
                      std::vector<uint32_t>& nonzero_rows) {
  for (uint32_t r : candidates) {
    double sums[kWidth];
    for (size_t b = 0; b < kWidth; ++b) sums[b] = 0.0;
    const uint64_t begin = offsets[r];
    const uint64_t end = offsets[r + 1];
    if constexpr (Vals::kRowConstantWeight) {
      if (begin != end) {
        const double w = static_cast<double>(vals.Row(r));
        for (uint64_t e = begin; e < end; ++e) {
          const V* __restrict xr = x.RowPtr(indices[e]);
          for (size_t b = 0; b < kWidth; ++b) {
            sums[b] += w * static_cast<double>(xr[b]);
          }
        }
      }
    } else {
      for (uint64_t e = begin; e < end; ++e) {
        const double w = vals.Edge(e, indices[e]);
        const V* __restrict xr = x.RowPtr(indices[e]);
        for (size_t b = 0; b < kWidth; ++b) {
          sums[b] += w * static_cast<double>(xr[b]);
        }
      }
    }
    V* __restrict out = y.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < kWidth; ++b) {
      out[b] = static_cast<V>(sums[b]);
      any_nonzero |= (out[b] != V{0});
    }
    if (any_nonzero) nonzero_rows.push_back(r);
  }
}

template <typename V, typename Vals>
void SpMmFrontierRowsGeneric(const uint64_t* offsets, const uint32_t* indices,
                             Vals vals, std::span<const uint32_t> candidates,
                             size_t num_vectors, const DenseBlockT<V>& x,
                             DenseBlockT<V>& y,
                             std::vector<uint32_t>& nonzero_rows,
                             std::vector<double>& sums) {
  sums.resize(num_vectors);
  for (uint32_t r : candidates) {
    for (size_t b = 0; b < num_vectors; ++b) sums[b] = 0.0;
    const uint64_t begin = offsets[r];
    const uint64_t end = offsets[r + 1];
    if constexpr (Vals::kRowConstantWeight) {
      if (begin != end) {
        const double w = static_cast<double>(vals.Row(r));
        for (uint64_t e = begin; e < end; ++e) {
          const V* __restrict xr = x.RowPtr(indices[e]);
          for (size_t b = 0; b < num_vectors; ++b) {
            sums[b] += w * static_cast<double>(xr[b]);
          }
        }
      }
    } else {
      for (uint64_t e = begin; e < end; ++e) {
        const double w = vals.Edge(e, indices[e]);
        const V* __restrict xr = x.RowPtr(indices[e]);
        for (size_t b = 0; b < num_vectors; ++b) {
          sums[b] += w * static_cast<double>(xr[b]);
        }
      }
    }
    V* __restrict out = y.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < num_vectors; ++b) {
      out[b] = static_cast<V>(sums[b]);
      any_nonzero |= (out[b] != V{0});
    }
    if (any_nonzero) nonzero_rows.push_back(r);
  }
}

/// Block-row zeroing of y[col_begin, col_end) — the range kernels own their
/// destination slice end to end.
template <typename V>
void ZeroBlockRows(DenseBlockT<V>& y, uint32_t begin, uint32_t end) {
  if (begin >= end) return;
  V* first = y.RowPtr(begin);
  std::fill(first, first + (end - begin) * y.num_vectors(), V{0});
}

template <size_t kWidth, typename V, typename Vals>
void SpMmTransposeRangeRows(const uint64_t* offsets, const uint32_t* indices,
                            Vals vals, uint32_t rows, const DenseBlockT<V>& x,
                            DenseBlockT<V>& y, uint32_t col_begin,
                            uint32_t col_end) {
  for (uint32_t r = 0; r < rows; ++r) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < kWidth; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint32_t* row_begin = indices + offsets[r];
    const uint32_t* row_end = indices + offsets[r + 1];
    const uint32_t* lo = std::lower_bound(row_begin, row_end, col_begin);
    if constexpr (Vals::kRowConstantWeight) {
      if (lo == row_end || *lo >= col_end) continue;
      V p[kWidth];
      const V w = vals.Row(r);
      for (size_t b = 0; b < kWidth; ++b) p[b] = w * xr[b];
      for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
        V* __restrict yr = y.RowPtr(*it);
        for (size_t b = 0; b < kWidth; ++b) yr[b] += p[b];
      }
    } else {
      for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
        const V w = vals.Edge(static_cast<uint64_t>(it - indices), *it);
        V* __restrict yr = y.RowPtr(*it);
        for (size_t b = 0; b < kWidth; ++b) yr[b] += w * xr[b];
      }
    }
  }
}

template <typename V, typename Vals>
void SpMmTransposeRangeRowsGeneric(const uint64_t* offsets,
                                   const uint32_t* indices, Vals vals,
                                   uint32_t rows, size_t num_vectors,
                                   const DenseBlockT<V>& x, DenseBlockT<V>& y,
                                   uint32_t col_begin, uint32_t col_end) {
  std::vector<V> p(num_vectors);
  for (uint32_t r = 0; r < rows; ++r) {
    const V* __restrict xr = x.RowPtr(r);
    bool any_nonzero = false;
    for (size_t b = 0; b < num_vectors; ++b) any_nonzero |= (xr[b] != V{0});
    if (!any_nonzero) continue;
    const uint32_t* row_begin = indices + offsets[r];
    const uint32_t* row_end = indices + offsets[r + 1];
    const uint32_t* lo = std::lower_bound(row_begin, row_end, col_begin);
    if constexpr (Vals::kRowConstantWeight) {
      if (lo == row_end || *lo >= col_end) continue;
      const V w = vals.Row(r);
      for (size_t b = 0; b < num_vectors; ++b) p[b] = w * xr[b];
      for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
        V* __restrict yr = y.RowPtr(*it);
        for (size_t b = 0; b < num_vectors; ++b) yr[b] += p[b];
      }
    } else {
      for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
        const V w = vals.Edge(static_cast<uint64_t>(it - indices), *it);
        V* __restrict yr = y.RowPtr(*it);
        for (size_t b = 0; b < num_vectors; ++b) yr[b] += w * xr[b];
      }
    }
  }
}

}  // namespace

template <typename V>
bool CsrMatrixT<V>::SpMvTransposeFrontier(const std::vector<V>& x,
                                          std::span<const uint32_t> frontier,
                                          double density_threshold,
                                          std::vector<V>& y,
                                          std::vector<uint32_t>& next_frontier,
                                          FrontierScratch& scratch) const {
  TPA_DCHECK(x.size() == rows());
  if (static_cast<double>(frontier.size()) >
      density_threshold * static_cast<double>(rows())) {
    SpMvTranspose(x, y);
    next_frontier.clear();
    return false;
  }
  TPA_DCHECK(y.size() == cols());
  scratch.BeginEpoch(cols());
  next_frontier.clear();
  if (rows() == 0) return true;
  const uint64_t* offsets = structure_.row_offsets.data();
  const uint32_t* indices = structure_.col_indices.data();
  DispatchVals<V>(mode_, values_, scales_, offsets, [&](auto vals) {
    for (uint32_t r : frontier) {
      const V xr = x[r];
      if (xr == V{0}) continue;
      const uint64_t begin = offsets[r];
      const uint64_t end = offsets[r + 1];
      if constexpr (decltype(vals)::kRowConstantWeight) {
        if (begin == end) continue;
        const V p = vals.Row(r) * xr;
        for (uint64_t e = begin; e < end; ++e) {
          const uint32_t dest = indices[e];
          y[dest] += p;
          if (scratch.touched_epoch[dest] != scratch.epoch) {
            scratch.touched_epoch[dest] = scratch.epoch;
            next_frontier.push_back(dest);
          }
        }
      } else {
        for (uint64_t e = begin; e < end; ++e) {
          const uint32_t dest = indices[e];
          y[dest] += vals.Edge(e, dest) * xr;
          if (scratch.touched_epoch[dest] != scratch.epoch) {
            scratch.touched_epoch[dest] = scratch.epoch;
            next_frontier.push_back(dest);
          }
        }
      }
    }
  });
  std::sort(next_frontier.begin(), next_frontier.end());
  return true;
}

template <typename V>
bool CsrMatrixT<V>::SpMmTransposeFrontier(const DenseBlockT<V>& x,
                                          std::span<const uint32_t> frontier,
                                          double density_threshold,
                                          DenseBlockT<V>& y,
                                          std::vector<uint32_t>& next_frontier,
                                          FrontierScratch& scratch) const {
  TPA_DCHECK(x.rows() == rows());
  if (static_cast<double>(frontier.size()) >
      density_threshold * static_cast<double>(rows())) {
    SpMmTranspose(x, y);
    next_frontier.clear();
    return false;
  }
  TPA_DCHECK(y.rows() == cols());
  TPA_DCHECK(y.num_vectors() == x.num_vectors());
  scratch.BeginEpoch(cols());
  next_frontier.clear();
  if (rows() == 0) return true;
  const size_t num_vectors = x.num_vectors();
  const uint64_t* offsets = structure_.row_offsets.data();
  const uint32_t* indices = structure_.col_indices.data();
  DispatchVals<V>(mode_, values_, scales_, offsets, [&](auto vals) {
    DispatchWidth(
        num_vectors,
        [&]<size_t kWidth>() {
          SpMmTransposeFrontierRows<kWidth>(offsets, indices, vals, frontier,
                                            x, y, next_frontier, scratch);
        },
        [&] {
          SpMmTransposeFrontierRowsGeneric(offsets, indices, vals, frontier,
                                           num_vectors, x, y, next_frontier,
                                           scratch);
        });
  });
  std::sort(next_frontier.begin(), next_frontier.end());
  return true;
}

template <typename V>
bool CsrMatrixT<V>::SpMvFrontier(const std::vector<V>& x,
                                 std::span<const uint32_t> candidates,
                                 double density_threshold, std::vector<V>& y,
                                 std::vector<uint32_t>& nonzero_rows) const {
  TPA_DCHECK(x.size() == cols());
  if (static_cast<double>(candidates.size()) >
      density_threshold * static_cast<double>(rows())) {
    SpMv(x, y);
    nonzero_rows.clear();
    return false;
  }
  TPA_DCHECK(y.size() == rows());
  nonzero_rows.clear();
  if (rows() == 0) return true;
  const uint64_t* offsets = structure_.row_offsets.data();
  const uint32_t* indices = structure_.col_indices.data();
  DispatchVals<V>(mode_, values_, scales_, offsets, [&](auto vals) {
    for (uint32_t r : candidates) {
      y[r] = static_cast<V>(GatherRow(offsets, indices, vals, x.data(), r));
      if (y[r] != V{0}) nonzero_rows.push_back(r);
    }
  });
  return true;
}

template <typename V>
bool CsrMatrixT<V>::SpMmFrontier(const DenseBlockT<V>& x,
                                 std::span<const uint32_t> candidates,
                                 double density_threshold, DenseBlockT<V>& y,
                                 std::vector<uint32_t>& nonzero_rows) const {
  TPA_DCHECK(x.rows() == cols());
  if (static_cast<double>(candidates.size()) >
      density_threshold * static_cast<double>(rows())) {
    SpMm(x, y);
    nonzero_rows.clear();
    return false;
  }
  TPA_DCHECK(y.rows() == rows());
  TPA_DCHECK(y.num_vectors() == x.num_vectors());
  nonzero_rows.clear();
  if (rows() == 0) return true;
  const size_t num_vectors = x.num_vectors();
  const uint64_t* offsets = structure_.row_offsets.data();
  const uint32_t* indices = structure_.col_indices.data();
  DispatchVals<V>(mode_, values_, scales_, offsets, [&](auto vals) {
    DispatchWidth(
        num_vectors,
        [&]<size_t kWidth>() {
          SpMmFrontierRows<kWidth>(offsets, indices, vals, candidates, x, y,
                                   nonzero_rows);
        },
        [&] {
          std::vector<double> sums;
          SpMmFrontierRowsGeneric(offsets, indices, vals, candidates,
                                  num_vectors, x, y, nonzero_rows, sums);
        });
  });
  return true;
}

template <typename V>
void CsrMatrixT<V>::ExpandFrontier(std::span<const uint32_t> rows_list,
                                   std::vector<uint32_t>& expanded,
                                   FrontierScratch& scratch) const {
  scratch.BeginEpoch(cols());
  expanded.clear();
  if (rows() == 0) return;
  const uint64_t* offsets = structure_.row_offsets.data();
  const uint32_t* indices = structure_.col_indices.data();
  for (uint32_t r : rows_list) {
    const uint64_t end = offsets[r + 1];
    for (uint64_t e = offsets[r]; e < end; ++e) {
      const uint32_t c = indices[e];
      if (scratch.touched_epoch[c] != scratch.epoch) {
        scratch.touched_epoch[c] = scratch.epoch;
        expanded.push_back(c);
      }
    }
  }
  std::sort(expanded.begin(), expanded.end());
}

template <typename V>
std::vector<uint32_t> CsrMatrixT<V>::NnzBalancedColumnRanges(
    size_t num_parts) const {
  num_parts = std::max<size_t>(1, num_parts);
  std::vector<uint64_t> col_nnz(cols(), 0);
  for (uint32_t c : structure_.col_indices) ++col_nnz[c];

  std::vector<uint32_t> boundaries;
  boundaries.reserve(num_parts + 1);
  boundaries.push_back(0);
  const uint64_t total = nnz();
  uint64_t seen = 0;
  for (uint32_t c = 0; c < cols() && boundaries.size() < num_parts; ++c) {
    seen += col_nnz[c];
    // Cut after column c once this part has its proportional share.
    if (seen * num_parts >= total * boundaries.size()) {
      boundaries.push_back(c + 1);
    }
  }
  while (boundaries.size() <= num_parts) boundaries.push_back(cols());
  boundaries.back() = cols();
  return boundaries;
}

template <typename V>
void CsrMatrixT<V>::SpMvTransposeRange(const std::vector<V>& x,
                                       std::vector<V>& y, uint32_t col_begin,
                                       uint32_t col_end) const {
  TPA_DCHECK(x.size() == rows());
  TPA_DCHECK(y.size() == cols());
  TPA_DCHECK(col_begin <= col_end && col_end <= cols());
  std::fill(y.begin() + col_begin, y.begin() + col_end, V{0});
  if (rows() == 0) return;
  const uint64_t* offsets = structure_.row_offsets.data();
  const uint32_t* indices = structure_.col_indices.data();
  DispatchVals<V>(mode_, values_, scales_, offsets, [&](auto vals) {
    for (uint32_t r = 0; r < rows(); ++r) {
      const V xr = x[r];
      if (xr == V{0}) continue;
      const uint32_t* row_begin = indices + offsets[r];
      const uint32_t* row_end = indices + offsets[r + 1];
      const uint32_t* lo = std::lower_bound(row_begin, row_end, col_begin);
      if constexpr (decltype(vals)::kRowConstantWeight) {
        if (lo == row_end || *lo >= col_end) continue;
        const V p = vals.Row(r) * xr;
        for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
          y[*it] += p;
        }
      } else {
        for (const uint32_t* it = lo; it != row_end && *it < col_end; ++it) {
          y[*it] += vals.Edge(static_cast<uint64_t>(it - indices), *it) * xr;
        }
      }
    }
  });
}

template <typename V>
void CsrMatrixT<V>::SpMmTransposeRange(const DenseBlockT<V>& x,
                                       DenseBlockT<V>& y, uint32_t col_begin,
                                       uint32_t col_end) const {
  TPA_DCHECK(x.rows() == rows());
  TPA_DCHECK(y.rows() == cols());
  TPA_DCHECK(y.num_vectors() == x.num_vectors());
  TPA_DCHECK(col_begin <= col_end && col_end <= cols());
  ZeroBlockRows(y, col_begin, col_end);
  if (rows() == 0) return;
  const size_t num_vectors = x.num_vectors();
  const uint64_t* offsets = structure_.row_offsets.data();
  const uint32_t* indices = structure_.col_indices.data();
  DispatchVals<V>(mode_, values_, scales_, offsets, [&](auto vals) {
    DispatchWidth(
        num_vectors,
        [&]<size_t kWidth>() {
          SpMmTransposeRangeRows<kWidth>(offsets, indices, vals, rows(), x, y,
                                         col_begin, col_end);
        },
        [&] {
          SpMmTransposeRangeRowsGeneric(offsets, indices, vals, rows(),
                                        num_vectors, x, y, col_begin, col_end);
        });
  });
}

template <typename V>
void CsrMatrixT<V>::SpMvTransposeParallel(const std::vector<V>& x,
                                          std::vector<V>& y,
                                          std::span<const uint32_t> boundaries,
                                          TaskRunner& runner) const {
  TPA_DCHECK(x.size() == rows());
  TPA_CHECK_GE(boundaries.size(), 2u);
  TPA_CHECK_EQ(boundaries.front(), 0u);
  TPA_CHECK_EQ(boundaries.back(), cols());
  y.resize(cols());
  runner.ParallelFor(boundaries.size() - 1, [&](size_t p) {
    SpMvTransposeRange(x, y, boundaries[p], boundaries[p + 1]);
  });
}

template <typename V>
void CsrMatrixT<V>::SpMmTransposeParallel(const DenseBlockT<V>& x,
                                          DenseBlockT<V>& y,
                                          std::span<const uint32_t> boundaries,
                                          TaskRunner& runner) const {
  TPA_DCHECK(x.rows() == rows());
  TPA_CHECK_GE(boundaries.size(), 2u);
  TPA_CHECK_EQ(boundaries.front(), 0u);
  TPA_CHECK_EQ(boundaries.back(), cols());
  y.Resize(cols(), x.num_vectors());
  runner.ParallelFor(boundaries.size() - 1, [&](size_t p) {
    SpMmTransposeRange(x, y, boundaries[p], boundaries[p + 1]);
  });
}

template <typename V>
size_t CsrMatrixT<V>::SizeBytes() const {
  return StructureBytes() + ValueBytes();
}

template class CsrMatrixT<double>;
template class CsrMatrixT<float>;

}  // namespace tpa::la
