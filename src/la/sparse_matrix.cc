#include "la/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tpa::la {

StatusOr<SparseMatrix> SparseMatrix::FromTriplets(
    uint32_t rows, uint32_t cols, std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      return OutOfRangeError("triplet index out of range");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });

  std::vector<uint64_t> offsets(static_cast<size_t>(rows) + 1, 0);
  std::vector<uint32_t> indices;
  std::vector<double> values;
  indices.reserve(triplets.size());
  values.reserve(triplets.size());

  size_t i = 0;
  while (i < triplets.size()) {
    const uint32_t r = triplets[i].row;
    const uint32_t c = triplets[i].col;
    double sum = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      sum += triplets[i].value;
      ++i;
    }
    if (sum != 0.0) {
      indices.push_back(c);
      values.push_back(sum);
      ++offsets[r + 1];
    }
  }
  for (size_t r = 1; r < offsets.size(); ++r) offsets[r] += offsets[r - 1];
  return SparseMatrix(rows, cols, std::move(offsets), std::move(indices),
                      std::move(values));
}

void SparseMatrix::MatVec(const std::vector<double>& x,
                          std::vector<double>& y) const {
  TPA_DCHECK(x.size() == cols_);
  y.assign(rows_, 0.0);
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const uint64_t begin = offsets_[r];
    const uint64_t end = offsets_[r + 1];
    for (uint64_t e = begin; e < end; ++e) sum += values_[e] * x[indices_[e]];
    y[r] = sum;
  }
}

void SparseMatrix::MatVecTranspose(const std::vector<double>& x,
                                   std::vector<double>& y) const {
  TPA_DCHECK(x.size() == rows_);
  y.assign(cols_, 0.0);
  for (uint32_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const uint64_t begin = offsets_[r];
    const uint64_t end = offsets_[r + 1];
    for (uint64_t e = begin; e < end; ++e) y[indices_[e]] += values_[e] * xr;
  }
}

SparseMatrix SparseMatrix::Dropped(double threshold) const {
  std::vector<uint64_t> offsets(static_cast<size_t>(rows_) + 1, 0);
  std::vector<uint32_t> indices;
  std::vector<double> values;
  for (uint32_t r = 0; r < rows_; ++r) {
    for (uint64_t e = offsets_[r]; e < offsets_[r + 1]; ++e) {
      if (std::abs(values_[e]) >= threshold) {
        indices.push_back(indices_[e]);
        values.push_back(values_[e]);
        ++offsets[r + 1];
      }
    }
  }
  for (size_t r = 1; r < offsets.size(); ++r) offsets[r] += offsets[r - 1];
  return SparseMatrix(rows_, cols_, std::move(offsets), std::move(indices),
                      std::move(values));
}

size_t SparseMatrix::SizeBytes() const {
  return offsets_.size() * sizeof(uint64_t) +
         indices_.size() * sizeof(uint32_t) + values_.size() * sizeof(double);
}

}  // namespace tpa::la
