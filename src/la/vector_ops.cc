#include "la/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tpa::la {

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  TPA_DCHECK(x.size() == y.size());
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::vector<double>& x) {
  for (double& v : x) v *= alpha;
}

double Dot(const std::vector<double>& x, const std::vector<double>& y) {
  TPA_DCHECK(x.size() == y.size());
  double sum = 0.0;
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

double NormL1(const std::vector<double>& x) {
  double sum = 0.0;
  for (double v : x) sum += std::abs(v);
  return sum;
}

double NormL2(const std::vector<double>& x) { return std::sqrt(Dot(x, x)); }

double NormInf(const std::vector<double>& x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

double L1Distance(const std::vector<double>& x, const std::vector<double>& y) {
  TPA_DCHECK(x.size() == y.size());
  double sum = 0.0;
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) sum += std::abs(x[i] - y[i]);
  return sum;
}

void SetZero(std::vector<double>& x) { std::fill(x.begin(), x.end(), 0.0); }

std::vector<size_t> TopKIndices(const std::vector<double>& x, size_t k) {
  k = std::min(k, x.size());
  std::vector<size_t> idx(x.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  auto better = [&x](size_t a, size_t b) {
    if (x[a] != x[b]) return x[a] > x[b];
    return a < b;
  };
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k), idx.end(),
                    better);
  idx.resize(k);
  return idx;
}

void BlockAxpy(double alpha, const DenseBlock& x, DenseBlock& y) {
  TPA_DCHECK(x.rows() == y.rows());
  TPA_DCHECK(x.num_vectors() == y.num_vectors());
  const size_t n = x.rows() * x.num_vectors();
  const double* xs = x.RowPtr(0);
  double* ys = y.RowPtr(0);
  for (size_t i = 0; i < n; ++i) ys[i] += alpha * xs[i];
}

void BlockScale(double alpha, DenseBlock& x) {
  const size_t n = x.rows() * x.num_vectors();
  double* xs = x.RowPtr(0);
  for (size_t i = 0; i < n; ++i) xs[i] *= alpha;
}

void BlockAddVector(double alpha, const std::vector<double>& v, DenseBlock& y) {
  TPA_DCHECK(v.size() == y.rows());
  const size_t num_vectors = y.num_vectors();
  for (size_t r = 0; r < v.size(); ++r) {
    const double add = alpha * v[r];
    double* yr = y.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) yr[b] += add;
  }
}

std::vector<double> BlockColumnNormsL1(const DenseBlock& x) {
  std::vector<double> norms(x.num_vectors(), 0.0);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* xr = x.RowPtr(r);
    for (size_t b = 0; b < norms.size(); ++b) norms[b] += std::abs(xr[b]);
  }
  return norms;
}

}  // namespace tpa::la
