#ifndef TPA_LA_SPARSE_MATRIX_H_
#define TPA_LA_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace tpa::la {

/// Coordinate-form entry used to assemble sparse matrices.
struct Triplet {
  uint32_t row;
  uint32_t col;
  double value;
};

/// Immutable CSR sparse matrix of doubles.
///
/// This is the storage format for everything the block-elimination methods
/// (BEAR, BePI) precompute: the partitioned H blocks, sparsified inverses,
/// and Schur-complement factors.  Duplicate triplets are summed during
/// assembly.
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0) {}

  /// Assembles from triplets (any order; duplicates are summed; explicit
  /// zeros are dropped).  Fails on out-of-range indices.
  static StatusOr<SparseMatrix> FromTriplets(uint32_t rows, uint32_t cols,
                                             std::vector<Triplet> triplets);

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  std::span<const uint32_t> RowIndices(uint32_t r) const {
    return {indices_.data() + offsets_[r], indices_.data() + offsets_[r + 1]};
  }
  std::span<const double> RowValues(uint32_t r) const {
    return {values_.data() + offsets_[r], values_.data() + offsets_[r + 1]};
  }

  /// y = A x (y overwritten).  Requires x.size() == cols().
  void MatVec(const std::vector<double>& x, std::vector<double>& y) const;

  /// y = A^T x (y overwritten).  Requires x.size() == rows().
  void MatVecTranspose(const std::vector<double>& x,
                       std::vector<double>& y) const;

  /// Returns a copy with entries |v| < threshold removed (BEAR-APPROX's
  /// drop-tolerance sparsification).
  SparseMatrix Dropped(double threshold) const;

  /// Logical storage bytes (offsets + indices + values).
  size_t SizeBytes() const;

 private:
  SparseMatrix(uint32_t rows, uint32_t cols, std::vector<uint64_t> offsets,
               std::vector<uint32_t> indices, std::vector<double> values)
      : rows_(rows),
        cols_(cols),
        offsets_(std::move(offsets)),
        indices_(std::move(indices)),
        values_(std::move(values)) {}

  uint32_t rows_;
  uint32_t cols_;
  std::vector<uint64_t> offsets_;   // size rows+1
  std::vector<uint32_t> indices_;   // column ids, sorted within a row
  std::vector<double> values_;
};

}  // namespace tpa::la

#endif  // TPA_LA_SPARSE_MATRIX_H_
