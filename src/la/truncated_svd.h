#ifndef TPA_LA_TRUNCATED_SVD_H_
#define TPA_LA_TRUNCATED_SVD_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "la/linear_operator.h"
#include "util/status.h"

namespace tpa::la {

/// Rank-t truncated SVD, A ≈ U diag(s) V^T, computed matrix-free by subspace
/// (block power) iteration on A^T A followed by a small dense
/// eigendecomposition.  This is NB-LIN's preprocessing workhorse.
struct TruncatedSvd {
  DenseMatrix u;                 // rows × t, orthonormal columns
  std::vector<double> singular;  // t values, decreasing
  DenseMatrix v;                 // cols × t, orthonormal columns

  /// Logical bytes of the three factors (for preprocessed-size accounting).
  size_t SizeBytes() const {
    return u.SizeBytes() + v.SizeBytes() + singular.size() * sizeof(double);
  }
};

struct TruncatedSvdOptions {
  size_t rank = 10;
  int power_iterations = 12;  // subspace iteration sweeps
  uint64_t seed = 1;          // random start basis
};

/// Computes the decomposition of the operator pair (A, A^T).
/// `a` maps cols→rows, `at` maps rows→cols.  Fails if rank is 0 or exceeds
/// min(rows, cols).
StatusOr<TruncatedSvd> ComputeTruncatedSvd(const LinearOperator& a,
                                           const LinearOperator& at,
                                           const TruncatedSvdOptions& options);

}  // namespace tpa::la

#endif  // TPA_LA_TRUNCATED_SVD_H_
