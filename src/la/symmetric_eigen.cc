#include "la/symmetric_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tpa::la {

StatusOr<SymmetricEigen> ComputeSymmetricEigen(const DenseMatrix& a,
                                               int max_sweeps, double tol) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("symmetric eigen requires a square matrix");
  }
  const size_t n = a.rows();
  DenseMatrix m = a;
  DenseMatrix v = DenseMatrix::Identity(n);

  auto off_diagonal_norm = [&m, n]() {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) sum += m.At(i, j) * m.At(i, j);
    }
    return std::sqrt(sum);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m.At(p, q);
        if (std::abs(apq) <= tol * 1e-3) continue;
        const double app = m.At(p, p);
        const double aqq = m.At(q, q);
        // Classic Jacobi rotation annihilating m[p][q].
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double mkp = m.At(k, p);
          const double mkq = m.At(k, q);
          m.At(k, p) = c * mkp - s * mkq;
          m.At(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double mpk = m.At(p, k);
          const double mqk = m.At(q, k);
          m.At(p, k) = c * mpk - s * mqk;
          m.At(q, k) = s * mpk + c * mqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by decreasing eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&m](size_t x, size_t y) {
    return m.At(x, x) > m.At(y, y);
  });

  SymmetricEigen out;
  out.eigenvalues.resize(n);
  out.eigenvectors = DenseMatrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = m.At(order[j], order[j]);
    for (size_t i = 0; i < n; ++i) {
      out.eigenvectors.At(i, j) = v.At(i, order[j]);
    }
  }
  return out;
}

}  // namespace tpa::la
