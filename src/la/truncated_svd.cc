#include "la/truncated_svd.h"

#include <algorithm>
#include <cmath>

#include "la/qr.h"
#include "la/symmetric_eigen.h"
#include "util/check.h"
#include "util/random.h"

namespace tpa::la {

namespace {

/// Extracts column j of `m` into a vector.
std::vector<double> Column(const DenseMatrix& m, size_t j) {
  std::vector<double> col(m.rows());
  for (size_t i = 0; i < m.rows(); ++i) col[i] = m.At(i, j);
  return col;
}

void SetColumn(DenseMatrix& m, size_t j, const std::vector<double>& col) {
  TPA_DCHECK(col.size() == m.rows());
  for (size_t i = 0; i < m.rows(); ++i) m.At(i, j) = col[i];
}

/// Applies `op` to every column of `x`: returns [op(x_0) ... op(x_t)].
StatusOr<DenseMatrix> ApplyToColumns(const LinearOperator& op,
                                     const DenseMatrix& x) {
  if (x.rows() != op.cols) {
    return InvalidArgumentError("operator/column dimension mismatch");
  }
  DenseMatrix out(op.rows, x.cols());
  std::vector<double> y(op.rows);
  for (size_t j = 0; j < x.cols(); ++j) {
    std::vector<double> col = Column(x, j);
    op.apply(col, y);
    SetColumn(out, j, y);
  }
  return out;
}

}  // namespace

StatusOr<TruncatedSvd> ComputeTruncatedSvd(const LinearOperator& a,
                                           const LinearOperator& at,
                                           const TruncatedSvdOptions& options) {
  const size_t rank = options.rank;
  if (rank == 0) return InvalidArgumentError("rank must be positive");
  if (rank > std::min(a.rows, a.cols)) {
    return InvalidArgumentError("rank exceeds matrix dimensions");
  }
  if (a.rows != at.cols || a.cols != at.rows) {
    return InvalidArgumentError("A and A^T dimensions are inconsistent");
  }

  // Random start basis V (cols × rank), orthonormalized.
  Rng rng(options.seed);
  DenseMatrix v(a.cols, rank);
  for (size_t i = 0; i < a.cols; ++i) {
    for (size_t j = 0; j < rank; ++j) v.At(i, j) = rng.NextGaussian();
  }
  {
    TPA_ASSIGN_OR_RETURN(QrDecomposition qr, QrDecomposition::ComputeThin(v));
    v = qr.q();
  }

  // Subspace iteration on A^T A, re-orthonormalizing each sweep.
  for (int iter = 0; iter < options.power_iterations; ++iter) {
    TPA_ASSIGN_OR_RETURN(DenseMatrix w, ApplyToColumns(a, v));    // A V
    TPA_ASSIGN_OR_RETURN(DenseMatrix z, ApplyToColumns(at, w));   // A^T A V
    TPA_ASSIGN_OR_RETURN(QrDecomposition qr, QrDecomposition::ComputeThin(z));
    v = qr.q();
  }

  // Rayleigh–Ritz: B = A V; eigendecompose the small Gram matrix B^T B.
  TPA_ASSIGN_OR_RETURN(DenseMatrix b, ApplyToColumns(a, v));
  DenseMatrix gram = b.Transposed().MatMul(b);  // rank × rank
  TPA_ASSIGN_OR_RETURN(SymmetricEigen eig, ComputeSymmetricEigen(gram));

  TruncatedSvd out;
  out.singular.resize(rank);
  for (size_t j = 0; j < rank; ++j) {
    out.singular[j] = std::sqrt(std::max(0.0, eig.eigenvalues[j]));
  }
  // Right singular vectors: V_final = V Z.
  out.v = v.MatMul(eig.eigenvectors);
  // Left singular vectors: U = B Z / sigma (columns with sigma==0 are left
  // as zero; they carry no energy).
  DenseMatrix bz = b.MatMul(eig.eigenvectors);
  out.u = DenseMatrix(a.rows, rank);
  for (size_t j = 0; j < rank; ++j) {
    const double sigma = out.singular[j];
    if (sigma <= 0.0) continue;
    for (size_t i = 0; i < a.rows; ++i) out.u.At(i, j) = bz.At(i, j) / sigma;
  }
  return out;
}

}  // namespace tpa::la
