#ifndef TPA_LA_LINEAR_OPERATOR_H_
#define TPA_LA_LINEAR_OPERATOR_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace tpa::la {

/// Matrix-free linear operator: y = A x.
///
/// The iterative solvers in this library (GMRES, subspace-iteration SVD)
/// only need the action of a matrix, never its entries, which lets the graph
/// methods hand in CSR matvecs, Schur complements, and shifted systems
/// without materializing anything.
struct LinearOperator {
  size_t rows = 0;
  size_t cols = 0;
  /// Computes y = A x; y is pre-sized to `rows` and zeroed by the caller's
  /// contract being: implementations must overwrite, not accumulate.
  std::function<void(const std::vector<double>& x, std::vector<double>& y)>
      apply;
};

}  // namespace tpa::la

#endif  // TPA_LA_LINEAR_OPERATOR_H_
