#include "la/topk.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tpa {
namespace la {

double GeometricTailMass(double norm, double decay, int iterations_left) {
  if (norm <= 0.0 || iterations_left <= 0) return 0.0;
  double tail;
  if (decay >= 1.0) {
    tail = norm * iterations_left;  // no decay: flat bound
  } else {
    // norm * (decay + decay^2 + ... + decay^left)
    tail = norm * decay * (1.0 - std::pow(decay, iterations_left)) /
           (1.0 - decay);
  }
  return tail * (1.0 + 1e-10);
}

void TopKSelector::Reset(size_t capacity) {
  capacity_ = capacity;
  entries_.clear();
  entries_.reserve(capacity);
}

void TopKSelector::Offer(NodeId node, double score) {
  if (capacity_ == 0) return;
  if (entries_.size() == capacity_) {
    const ScoredNode& worst = entries_.back();
    if (score < worst.score || (score == worst.score && node > worst.node)) {
      return;
    }
  }
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), ScoredNode{node, score},
      [](const ScoredNode& a, const ScoredNode& b) {
        return a.score != b.score ? a.score > b.score : a.node < b.node;
      });
  entries_.insert(pos, ScoredNode{node, score});
  if (entries_.size() > capacity_) entries_.pop_back();
}

bool TopKSelector::CertifiesTopK(size_t k, double slack) const {
  if (k == 0) return true;
  // Entry k (the best excluded candidate) must exist to bound the rest.
  if (entries_.size() <= k) return false;
  for (size_t i = 0; i < k; ++i) {
    if (!(entries_[i].score - entries_[i + 1].score > slack)) return false;
  }
  return true;
}

double TopKSelector::MinCertGap(size_t k) const {
  double min_gap = std::numeric_limits<double>::infinity();
  const size_t last = std::min(k, entries_.size() > 0 ? entries_.size() - 1
                                                      : size_t{0});
  for (size_t i = 0; i < last; ++i) {
    min_gap = std::min(min_gap, entries_[i].score - entries_[i + 1].score);
  }
  return min_gap;
}

}  // namespace la
}  // namespace tpa
