#ifndef TPA_LA_QR_H_
#define TPA_LA_QR_H_

#include <vector>

#include "la/dense_matrix.h"
#include "util/status.h"

namespace tpa::la {

/// Householder QR of a tall matrix A (rows >= cols), in thin form:
/// A = Q R with Q (rows × cols) having orthonormal columns and R
/// (cols × cols) upper triangular.
///
/// Used to orthonormalize the subspace basis in the truncated-SVD iteration
/// (NB-LIN's preprocessing) and for least-squares sanity checks in tests.
class QrDecomposition {
 public:
  /// Factorizes `a`.  Fails if rows < cols.
  static StatusOr<QrDecomposition> ComputeThin(const DenseMatrix& a);

  const DenseMatrix& q() const { return q_; }
  const DenseMatrix& r() const { return r_; }

  /// Solves min ‖A x − b‖₂ via R x = Q^T b.  Requires b.size() == rows.
  /// Fails if R is singular (rank-deficient A).
  StatusOr<std::vector<double>> LeastSquares(
      const std::vector<double>& b) const;

 private:
  QrDecomposition(DenseMatrix q, DenseMatrix r)
      : q_(std::move(q)), r_(std::move(r)) {}

  DenseMatrix q_;
  DenseMatrix r_;
};

}  // namespace tpa::la

#endif  // TPA_LA_QR_H_
