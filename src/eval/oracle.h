#ifndef TPA_EVAL_ORACLE_H_
#define TPA_EVAL_ORACLE_H_

#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tpa {

/// Exact-RWR oracle used as ground truth by the accuracy experiments.
///
/// The paper uses BePI for ground truth; CPI run to a very tight tolerance
/// solves the identical fixed point (the test suite cross-checks the two).
/// Vectors are cached per seed, since Figure 7 / Table III evaluate many
/// methods against the same exact answers.
class GroundTruthOracle {
 public:
  /// The graph must outlive the oracle.
  explicit GroundTruthOracle(const Graph& graph,
                             double restart_probability = 0.15,
                             double tolerance = 1e-12)
      : graph_(&graph),
        restart_probability_(restart_probability),
        tolerance_(tolerance) {}

  /// Exact RWR vector for `seed` (computed once, then cached).
  StatusOr<std::vector<double>> Exact(NodeId seed);

  size_t cached_queries() const { return cache_.size(); }

 private:
  const Graph* graph_;
  double restart_probability_;
  double tolerance_;
  std::unordered_map<NodeId, std::vector<double>> cache_;
};

}  // namespace tpa

#endif  // TPA_EVAL_ORACLE_H_
