#ifndef TPA_EVAL_EXPERIMENT_H_
#define TPA_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/presets.h"
#include "method/registry.h"
#include "method/rwr_method.h"
#include "util/status.h"

namespace tpa {

/// Default logical memory budget for preprocessed data, standing in for the
/// paper's 200 GB workstation cap at our graph scale (Section 3 of
/// DESIGN.md).  Methods whose preprocessing footprint crosses it are
/// reported "OOM", reproducing the missing bars of Figure 1.
inline constexpr size_t kDefaultMemoryBudgetBytes = 192ull << 20;  // 192 MB

/// Number of random query seeds; the paper averages over 30 — experiments
/// default lower to keep single-core wall time reasonable and accept
/// `--seeds N` to match the paper exactly.
inline constexpr size_t kDefaultQuerySeeds = 3;

/// Deterministically picks `count` distinct query nodes.
std::vector<NodeId> PickQuerySeeds(const Graph& graph, size_t count,
                                   uint64_t rng_seed = 42);

/// Outcome of one method's preprocessing on one graph.
struct PreprocessMeasurement {
  bool out_of_memory = false;
  double seconds = 0.0;
  size_t preprocessed_bytes = 0;
};

/// Runs Preprocess under a fresh budget of `budget_bytes` and measures
/// wall-clock time and retained bytes.  RESOURCE_EXHAUSTED maps to
/// out_of_memory; other errors propagate.
StatusOr<PreprocessMeasurement> MeasurePreprocess(RwrMethod& method,
                                                  const Graph& graph,
                                                  size_t budget_bytes);

/// Average per-query wall-clock seconds over `seeds` (method must be
/// preprocessed).
StatusOr<double> MeasureOnlineSeconds(RwrMethod& method,
                                      const std::vector<NodeId>& seeds);

/// Shared command-line handling for the bench binaries: supports
/// `--scale F`, `--seeds N`, `--budget-mb N`, `--csv PATH`, `--datasets a,b`.
struct BenchArgs {
  double scale = 1.0;
  size_t seeds = kDefaultQuerySeeds;
  size_t budget_bytes = kDefaultMemoryBudgetBytes;
  std::string csv_path;
  std::string json_path;  // benchmark-specific machine-readable output
  std::vector<std::string> datasets;  // empty = experiment default

  static StatusOr<BenchArgs> Parse(int argc, char** argv);

  /// The dataset specs selected by --datasets (or `fallback` if none given).
  StatusOr<std::vector<DatasetSpec>> SelectDatasets(
      const std::vector<std::string>& fallback) const;
};

class TablePrinter;

/// Prints the table to stdout and, when args.csv_path is set, also writes it
/// there as CSV.  Returns a warning-level Status if the CSV file cannot be
/// written (the console output already happened).
Status EmitTable(const TablePrinter& table, const BenchArgs& args);

}  // namespace tpa

#endif  // TPA_EVAL_EXPERIMENT_H_
