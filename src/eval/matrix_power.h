#ifndef TPA_EVAL_MATRIX_POWER_H_
#define TPA_EVAL_MATRIX_POWER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "la/dense_matrix.h"
#include "util/status.h"

namespace tpa {

/// Per-power statistics of (Ã^T)^i backing Figures 3 and 4:
///  * nnz  — nonzero count (Figure 4(a); Figure 3 shows its spatial layout),
///  * c_i  — (1/n)·Σ_{j≠s} ‖c_s^{(i)} − c_j^{(i)}‖₁ averaged over the given
///           seeds, the stranger-approximation error driver (Figure 4(b)).
struct MatrixPowerStats {
  int power = 0;
  uint64_t nnz = 0;
  double avg_ci = 0.0;
};

/// Tracks the dense matrix M_i = (Ã^T)^i for i = 1..max_power and reports
/// stats at each power.  Ω(n²) memory — intended for the small analysis
/// graphs the paper uses (Slashdot/Google scale-downs).  Fails if
/// n² would exceed `max_dense_elements`.
StatusOr<std::vector<MatrixPowerStats>> AnalyzeMatrixPowers(
    const Graph& graph, int max_power, const std::vector<NodeId>& ci_seeds,
    uint64_t max_dense_elements = 64ull << 20);

/// The i-th power's nonzero density on a coarse grid (Figure 3's spy plot,
/// printable as text).  cell(r, c) = nnz share of the corresponding
/// submatrix, in [0, 1].
StatusOr<la::DenseMatrix> SpyGrid(const Graph& graph, int power,
                                  size_t grid = 16,
                                  uint64_t max_dense_elements = 64ull << 20);

}  // namespace tpa

#endif  // TPA_EVAL_MATRIX_POWER_H_
