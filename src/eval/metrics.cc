#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "la/vector_ops.h"
#include "util/check.h"

namespace tpa {

double RecallAtK(const std::vector<double>& approx,
                 const std::vector<double>& exact, size_t k) {
  TPA_CHECK_EQ(approx.size(), exact.size());
  k = std::min(k, exact.size());
  if (k == 0) return 1.0;
  std::vector<size_t> top_approx = la::TopKIndices(approx, k);
  std::vector<size_t> top_exact = la::TopKIndices(exact, k);
  std::sort(top_approx.begin(), top_approx.end());
  std::sort(top_exact.begin(), top_exact.end());
  std::vector<size_t> common;
  std::set_intersection(top_approx.begin(), top_approx.end(),
                        top_exact.begin(), top_exact.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) / static_cast<double>(k);
}

double L1Error(const std::vector<double>& approx,
               const std::vector<double>& exact) {
  return la::L1Distance(approx, exact);
}

double TopKAbsoluteError(const std::vector<double>& approx,
                         const std::vector<double>& exact, size_t k) {
  TPA_CHECK_EQ(approx.size(), exact.size());
  k = std::min(k, exact.size());
  if (k == 0) return 0.0;
  std::vector<size_t> top_exact = la::TopKIndices(exact, k);
  double sum = 0.0;
  for (size_t idx : top_exact) sum += std::abs(approx[idx] - exact[idx]);
  return sum / static_cast<double>(k);
}

}  // namespace tpa
