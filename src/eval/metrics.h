#ifndef TPA_EVAL_METRICS_H_
#define TPA_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace tpa {

/// Recall of the approximate top-k against the exact top-k:
/// |top_k(approx) ∩ top_k(exact)| / k — the paper's Figure 7 metric
/// (Twitter's "Who to Follow" framing).  k is clamped to the vector size.
double RecallAtK(const std::vector<double>& approx,
                 const std::vector<double>& exact, size_t k);

/// L1 norm of (approx − exact) — the paper's error metric for Table III and
/// Figures 8–9.  Vectors must be equal length.
double L1Error(const std::vector<double>& approx,
               const std::vector<double>& exact);

/// Average of per-element |approx − exact| over the exact top-k entries,
/// useful as a secondary quality signal in the examples.
double TopKAbsoluteError(const std::vector<double>& approx,
                         const std::vector<double>& exact, size_t k);

}  // namespace tpa

#endif  // TPA_EVAL_METRICS_H_
