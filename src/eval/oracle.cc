#include "eval/oracle.h"

#include "core/cpi.h"

namespace tpa {

StatusOr<std::vector<double>> GroundTruthOracle::Exact(NodeId seed) {
  auto it = cache_.find(seed);
  if (it != cache_.end()) return it->second;

  CpiOptions options;
  options.restart_probability = restart_probability_;
  options.tolerance = tolerance_;
  TPA_ASSIGN_OR_RETURN(std::vector<double> exact,
                       Cpi::ExactRwr(*graph_, seed, options));
  cache_.emplace(seed, exact);
  return exact;
}

}  // namespace tpa
