#include "eval/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace tpa {

std::vector<NodeId> PickQuerySeeds(const Graph& graph, size_t count,
                                   uint64_t rng_seed) {
  Rng rng(rng_seed);
  count = std::min<size_t>(count, graph.num_nodes());
  std::vector<uint64_t> raw =
      rng.SampleWithoutReplacement(graph.num_nodes(), count);
  std::vector<NodeId> seeds(raw.begin(), raw.end());
  std::sort(seeds.begin(), seeds.end());
  return seeds;
}

StatusOr<PreprocessMeasurement> MeasurePreprocess(RwrMethod& method,
                                                  const Graph& graph,
                                                  size_t budget_bytes) {
  MemoryBudget budget(budget_bytes);
  Stopwatch timer;
  Status status = method.Preprocess(graph, budget);
  PreprocessMeasurement out;
  out.seconds = timer.ElapsedSeconds();
  if (status.code() == StatusCode::kResourceExhausted) {
    out.out_of_memory = true;
    return out;
  }
  TPA_RETURN_IF_ERROR(status);
  out.preprocessed_bytes = method.PreprocessedBytes();
  return out;
}

StatusOr<double> MeasureOnlineSeconds(RwrMethod& method,
                                      const std::vector<NodeId>& seeds) {
  if (seeds.empty()) return InvalidArgumentError("no query seeds");
  Stopwatch timer;
  for (NodeId seed : seeds) {
    TPA_ASSIGN_OR_RETURN(std::vector<double> scores, method.Query(seed));
    (void)scores;
  }
  return timer.ElapsedSeconds() / static_cast<double>(seeds.size());
}

StatusOr<BenchArgs> BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next_value = [&]() -> StatusOr<std::string> {
      if (i + 1 >= argc) {
        return InvalidArgumentError("missing value for " + flag);
      }
      return std::string(argv[++i]);
    };
    if (flag == "--scale") {
      TPA_ASSIGN_OR_RETURN(std::string value, next_value());
      args.scale = std::atof(value.c_str());
      if (args.scale <= 0.0) {
        return InvalidArgumentError("--scale must be positive");
      }
    } else if (flag == "--seeds") {
      TPA_ASSIGN_OR_RETURN(std::string value, next_value());
      args.seeds = static_cast<size_t>(std::atoll(value.c_str()));
      if (args.seeds == 0) {
        return InvalidArgumentError("--seeds must be positive");
      }
    } else if (flag == "--budget-mb") {
      TPA_ASSIGN_OR_RETURN(std::string value, next_value());
      args.budget_bytes =
          static_cast<size_t>(std::atoll(value.c_str())) << 20;
    } else if (flag == "--csv") {
      TPA_ASSIGN_OR_RETURN(args.csv_path, next_value());
    } else if (flag == "--json") {
      TPA_ASSIGN_OR_RETURN(args.json_path, next_value());
    } else if (flag == "--datasets") {
      TPA_ASSIGN_OR_RETURN(std::string value, next_value());
      std::stringstream ss(value);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) args.datasets.push_back(item);
      }
    } else if (flag == "--help" || flag == "-h") {
      std::cout << "flags: --scale F  --seeds N  --budget-mb N  --csv PATH"
                   "  --json PATH  --datasets a,b,c\n";
      std::exit(0);
    } else {
      return InvalidArgumentError("unknown flag: " + flag);
    }
  }
  return args;
}

StatusOr<std::vector<DatasetSpec>> BenchArgs::SelectDatasets(
    const std::vector<std::string>& fallback) const {
  const std::vector<std::string>* names = datasets.empty() ? &fallback
                                                           : &datasets;
  std::vector<DatasetSpec> specs;
  for (const std::string& name : *names) {
    TPA_ASSIGN_OR_RETURN(DatasetSpec spec, FindDatasetSpec(name));
    specs.push_back(spec);
  }
  return specs;
}

Status EmitTable(const TablePrinter& table, const BenchArgs& args) {
  table.PrintText(std::cout);
  if (args.csv_path.empty()) return OkStatus();
  std::ofstream out(args.csv_path);
  if (!out) {
    return InvalidArgumentError("cannot open csv path: " + args.csv_path);
  }
  table.PrintCsv(out);
  return OkStatus();
}

}  // namespace tpa
