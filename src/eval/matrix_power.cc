#include "eval/matrix_power.h"

#include <cmath>

#include "util/check.h"

namespace tpa {

namespace {

/// Advances every column of `m` by one application of Ã^T.
void StepColumns(const Graph& graph, la::DenseMatrix& m,
                 std::vector<double>& col, std::vector<double>& out) {
  const size_t n = graph.num_nodes();
  for (size_t j = 0; j < m.cols(); ++j) {
    for (size_t i = 0; i < n; ++i) col[i] = m.At(i, j);
    graph.MultiplyTranspose(col, out);
    for (size_t i = 0; i < n; ++i) m.At(i, j) = out[i];
  }
}

uint64_t CountNonzeros(const la::DenseMatrix& m) {
  uint64_t nnz = 0;
  for (size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.RowPtr(i);
    for (size_t j = 0; j < m.cols(); ++j) {
      if (row[j] != 0.0) ++nnz;
    }
  }
  return nnz;
}

Status CheckDenseFits(const Graph& graph, uint64_t max_dense_elements) {
  const uint64_t n = graph.num_nodes();
  if (n * n > max_dense_elements) {
    return ResourceExhaustedError(
        "graph too large for dense matrix-power analysis; use a smaller "
        "--scale");
  }
  return OkStatus();
}

}  // namespace

StatusOr<std::vector<MatrixPowerStats>> AnalyzeMatrixPowers(
    const Graph& graph, int max_power, const std::vector<NodeId>& ci_seeds,
    uint64_t max_dense_elements) {
  if (max_power < 1) return InvalidArgumentError("max_power must be >= 1");
  TPA_RETURN_IF_ERROR(CheckDenseFits(graph, max_dense_elements));
  for (NodeId s : ci_seeds) {
    if (s >= graph.num_nodes()) return OutOfRangeError("seed out of range");
  }
  const size_t n = graph.num_nodes();

  // M_0 = I.
  la::DenseMatrix m = la::DenseMatrix::Identity(n);
  std::vector<double> col(n), out(n);
  std::vector<MatrixPowerStats> stats;
  stats.reserve(max_power);

  for (int power = 1; power <= max_power; ++power) {
    StepColumns(graph, m, col, out);

    MatrixPowerStats entry;
    entry.power = power;
    entry.nnz = CountNonzeros(m);

    if (!ci_seeds.empty()) {
      // C_i = (1/n) Σ_{j≠s} ‖c_s − c_j‖₁, averaged over seeds.  Columns of
      // (Ã^T)^i live in the matrix's columns.
      double total = 0.0;
      for (NodeId s : ci_seeds) {
        double sum = 0.0;
        for (size_t j = 0; j < n; ++j) {
          if (j == s) continue;
          double diff = 0.0;
          for (size_t i = 0; i < n; ++i) {
            diff += std::abs(m.At(i, s) - m.At(i, j));
          }
          sum += diff;
        }
        total += sum / static_cast<double>(n);
      }
      entry.avg_ci = total / static_cast<double>(ci_seeds.size());
    }
    stats.push_back(entry);
  }
  return stats;
}

StatusOr<la::DenseMatrix> SpyGrid(const Graph& graph, int power, size_t grid,
                                  uint64_t max_dense_elements) {
  if (power < 1) return InvalidArgumentError("power must be >= 1");
  if (grid == 0) return InvalidArgumentError("grid must be positive");
  TPA_RETURN_IF_ERROR(CheckDenseFits(graph, max_dense_elements));
  const size_t n = graph.num_nodes();

  la::DenseMatrix m = la::DenseMatrix::Identity(n);
  std::vector<double> col(n), out(n);
  for (int p = 0; p < power; ++p) StepColumns(graph, m, col, out);

  grid = std::min(grid, n);
  la::DenseMatrix cells(grid, grid);
  const double cell_size = static_cast<double>(n) / static_cast<double>(grid);
  for (size_t i = 0; i < n; ++i) {
    const size_t gi = std::min(grid - 1, static_cast<size_t>(i / cell_size));
    for (size_t j = 0; j < n; ++j) {
      if (m.At(i, j) == 0.0) continue;
      const size_t gj = std::min(grid - 1, static_cast<size_t>(j / cell_size));
      cells.At(gi, gj) += 1.0;
    }
  }
  // Normalize by cell capacity.
  const double capacity = cell_size * cell_size;
  for (size_t r = 0; r < grid; ++r) {
    for (size_t c = 0; c < grid; ++c) cells.At(r, c) /= capacity;
  }
  return cells;
}

}  // namespace tpa
