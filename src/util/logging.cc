#include "util/logging.h"

#include <cstdio>
#include <ctime>

namespace tpa {

namespace {
LogSeverity g_min_severity = LogSeverity::kInfo;

const char* BaseName(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ < g_min_severity) return;
  static const char kSeverityChar[] = {'I', 'W', 'E'};
  std::time_t now = std::time(nullptr);
  std::tm tm_buf;
  localtime_r(&now, &tm_buf);
  std::fprintf(stderr, "[%c %02d:%02d:%02d %s:%d] %s\n",
               kSeverityChar[static_cast<int>(severity_)], tm_buf.tm_hour,
               tm_buf.tm_min, tm_buf.tm_sec, BaseName(file_), line_,
               stream_.str().c_str());
}

}  // namespace internal_logging

}  // namespace tpa
