#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace tpa {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TPA_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  TPA_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::FormatScientific(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string TablePrinter::FormatBytes(size_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  return buf;
}

void TablePrinter::PrintText(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  for (size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace tpa
