#include "util/random.h"

#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace tpa {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 seeder(seed);
  for (auto& word : s_) word = seeder.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TPA_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TPA_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  have_cached_gaussian_ = true;
  return u * factor;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t population,
                                                    uint64_t count) {
  TPA_CHECK_LE(count, population);
  // Floyd's algorithm: O(count) expected draws, O(count) memory.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(count);
  for (uint64_t j = population - count; j < population; ++j) {
    uint64_t t = NextBounded(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return {chosen.begin(), chosen.end()};
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  TPA_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    TPA_CHECK_GE(w, 0.0);
    total += w;
  }
  TPA_CHECK_GT(total, 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Scaled probabilities; "small" hold < 1, "large" hold >= 1.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Residual numerical leftovers are certainties.
  for (uint32_t l : large) prob_[l] = 1.0;
  for (uint32_t s : small) prob_[s] = 1.0;
}

size_t AliasSampler::Sample(Rng& rng) const {
  const size_t i = rng.NextBounded(prob_.size());
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace tpa
