#ifndef TPA_UTIL_TABLE_PRINTER_H_
#define TPA_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace tpa {

/// Formats experiment results as aligned text tables (for the console) and as
/// CSV (for downstream plotting).  Every bench binary in this repository
/// prints its paper table/figure through this class.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; its size must match the header count.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each cell with the given precision.
  static std::string FormatDouble(double value, int precision = 4);
  /// Scientific notation, e.g. "3.21e-04".
  static std::string FormatScientific(double value, int precision = 2);
  /// Bytes rendered as a human-friendly quantity, e.g. "12.3 MB".
  static std::string FormatBytes(size_t bytes);

  /// Writes an aligned table with a header separator line.
  void PrintText(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting needed for our cell contents).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tpa

#endif  // TPA_UTIL_TABLE_PRINTER_H_
