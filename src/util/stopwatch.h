#ifndef TPA_UTIL_STOPWATCH_H_
#define TPA_UTIL_STOPWATCH_H_

#include <chrono>

namespace tpa {

/// Wall-clock stopwatch used for all experiment timings (the paper reports
/// wall-clock time).  Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tpa

#endif  // TPA_UTIL_STOPWATCH_H_
