#include "util/cache_info.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tpa {

namespace {

/// Reads one small sysfs file into `out`; false when unreadable.
bool ReadSysfsLine(const std::string& path, std::string& out) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return false;
  char buffer[64];
  const bool ok = std::fgets(buffer, sizeof(buffer), file) != nullptr;
  std::fclose(file);
  if (!ok) return false;
  out.assign(buffer);
  return true;
}

/// Parses the sysfs cache-size format: a decimal count with an optional
/// K/M/G suffix (e.g. "2048K", "260M").  0 on parse failure.
size_t ParseCacheSize(const std::string& text) {
  size_t value = 0;
  size_t pos = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<size_t>(text[pos] - '0');
    ++pos;
  }
  if (pos == 0) return 0;
  if (pos < text.size()) {
    switch (text[pos]) {
      case 'K': value <<= 10; break;
      case 'M': value <<= 20; break;
      case 'G': value <<= 30; break;
      default: break;  // trailing newline or unknown unit: plain bytes
    }
  }
  return value;
}

}  // namespace

size_t DetectLastLevelCacheBytes(size_t fallback_bytes) {
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  int best_level = 0;
  size_t best_size = 0;
  for (int index = 0; index < 8; ++index) {
    const std::string dir = base + std::to_string(index);
    std::string level_text;
    std::string size_text;
    if (!ReadSysfsLine(dir + "/level", level_text) ||
        !ReadSysfsLine(dir + "/size", size_text)) {
      continue;
    }
    const int level = std::atoi(level_text.c_str());
    const size_t size = ParseCacheSize(size_text);
    if (size == 0) continue;
    // Prefer the deepest level; among same-level entries (i-cache/d-cache
    // splits) keep the larger.
    if (level > best_level || (level == best_level && size > best_size)) {
      best_level = level;
      best_size = size;
    }
  }
  return best_size > 0 ? best_size : fallback_bytes;
}

}  // namespace tpa
