#ifndef TPA_UTIL_SERIAL_H_
#define TPA_UTIL_SERIAL_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace tpa {

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `size` bytes.  Chain calls by
/// feeding the previous return value as `seed` (0 starts a fresh checksum).
/// Software table-based — fast enough to verify snapshot sections at load
/// time without any library dependency.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Paging-pattern hints forwarded to madvise on a mapped range.  The
/// out-of-core pipeline applies kSequential ahead of propagation sweeps
/// (aggressive readahead, early reclaim behind the sweep), kWillNeed to
/// warm a section about to be served, kRandom on gather-indexed sections
/// (no wasted readahead), and kDontNeed to drop a phase's streamed pages
/// from the resident set (file-backed pages re-fault with identical
/// contents — see ResidentSteward).
enum class MappedAdvice : uint8_t {
  kNormal,
  kSequential,
  kRandom,
  kWillNeed,
  kDontNeed,
};

/// Memory-mapped file (RAII over mmap/munmap).
///
/// Open() maps read-only — the snapshot reader hands non-owning SharedArray
/// views into the mapping, with a shared_ptr<MappedFile> as the keep-alive
/// owner; the file pages in lazily and is never copied.
///
/// Create() maps read-write (O_CREAT + ftruncate + MAP_SHARED): the
/// out-of-core CSR builder streams arrays straight into the mapping, so
/// the built graph never exists on the heap.  Writes reach the file via
/// the page cache; Sync() (msync) makes them durable.  MAP_SHARED also
/// means madvise(MADV_DONTNEED) never discards dirty data — it only
/// unmaps the pages from this process, which is what lets the resident
/// steward bound RSS during a build.
class MappedFile {
 public:
  static StatusOr<MappedFile> Open(const std::string& path);

  /// Creates (or truncates) `path` at exactly `size` bytes and maps it
  /// read-write.  `size` must be positive.
  static StatusOr<MappedFile> Create(const std::string& path, size_t size);

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }

  /// Writable view of the mapping; null unless Create()'d.
  uint8_t* mutable_data() {
    return writable_ ? static_cast<uint8_t*>(addr_) : nullptr;
  }
  bool writable() const { return writable_; }

  /// Flushes dirty pages to the file (msync MS_SYNC).  Only valid on a
  /// writable mapping.  Failpoint site "serial.msync" — a simulated
  /// disk-full surfaces here as a Status.
  Status Sync();

  /// Applies `advice` to [offset, offset + length) — length 0 means "to the
  /// end of the mapping".  Offsets are aligned down to page boundaries.
  /// Advice is best-effort: an madvise error (e.g. an unsupported hint) is
  /// reported but safe to ignore.
  Status Advise(MappedAdvice advice, size_t offset = 0,
                size_t length = 0) const;

 private:
  MappedFile() = default;

  void* addr_ = nullptr;  // null for an empty file
  size_t size_ = 0;
  bool writable_ = false;
};

/// Sequential binary file writer with explicit alignment control: the
/// snapshot writer lays sections on 64-byte boundaries (AlignTo pads with
/// zeros) so the mapped file satisfies every element type's alignment.
/// All errors surface as Status; Close() flushes and reports the final
/// write errors that a destructor would have to swallow.
class BinaryFileWriter {
 public:
  static StatusOr<BinaryFileWriter> Create(const std::string& path);

  BinaryFileWriter(BinaryFileWriter&& other) noexcept {
    *this = std::move(other);
  }
  BinaryFileWriter& operator=(BinaryFileWriter&& other) noexcept;
  BinaryFileWriter(const BinaryFileWriter&) = delete;
  BinaryFileWriter& operator=(const BinaryFileWriter&) = delete;
  ~BinaryFileWriter();

  Status WriteBytes(const void* data, size_t size);

  /// Pads with zero bytes until offset() is a multiple of `alignment`
  /// (a power of two).
  Status AlignTo(size_t alignment);

  /// Bytes written so far == the file offset the next write lands at.
  uint64_t offset() const { return offset_; }

  Status Close();

 private:
  BinaryFileWriter() = default;

  std::FILE* file_ = nullptr;
  uint64_t offset_ = 0;
};

/// Streams the globally sorted order of a uint64 sequence too large for
/// RAM: Add() buffers records up to `chunk_records`, sorts each full buffer
/// and spills it to a temp file; after Seal(), Merge() opens a k-way merge
/// over the spilled chunks that yields the records in ascending order using
/// only the bounded per-chunk read buffers.  Merge() may be called any
/// number of times — the out-of-core CSR build replays the same sorted
/// stream once to count degrees and once per direction to write indices.
///
/// Records are opaque uint64s ordered by value; the graph pipeline packs an
/// edge as (u << 32) | v so value order is (u, v) lexicographic order.
/// Duplicate records are preserved — deduplication is the consumer's
/// policy, applied trivially on a sorted stream.
///
/// The spill file is unlinked on destruction.  Failpoint sites:
/// "builder.spill" before each chunk write, "builder.merge" before each
/// merge-buffer refill — the fault suite turns them into simulated
/// disk-full / short-read errors.
class ExternalU64Sorter {
 public:
  struct Options {
    /// Backing file for the spilled chunks (created/truncated).
    std::string spill_path;
    /// In-RAM buffer capacity in records; this is the sorter's dominant
    /// memory use (8 bytes per record).  Must be positive.
    size_t chunk_records = size_t{1} << 22;  // 32 MB
    /// Per-chunk read buffer during merge, in records.
    size_t merge_buffer_records = size_t{1} << 15;  // 256 KB per chunk
  };

  /// A pull cursor over the merged, ascending record stream.  Errors during
  /// refills end the stream early; callers must check status() after the
  /// final Next().
  class MergeStream {
   public:
    /// True: *record is the next value in ascending order.  False: end of
    /// stream, or an I/O error (status() distinguishes).
    bool Next(uint64_t* record);

    const Status& status() const { return status_; }

   private:
    friend class ExternalU64Sorter;
    struct Source {
      uint64_t next_offset_records = 0;  // into the spill file
      uint64_t remaining_records = 0;
      std::vector<uint64_t> buffer;
      size_t cursor = 0;
    };

    bool Refill(size_t source_index);

    int fd_ = -1;  // borrowed from the sorter
    size_t buffer_records_ = 0;
    std::vector<Source> sources_;
    /// Min-heap of (value, source) pairs, one per non-exhausted source.
    std::vector<std::pair<uint64_t, uint32_t>> heap_;
    Status status_;
  };

  static StatusOr<ExternalU64Sorter> Create(Options options);

  ExternalU64Sorter(ExternalU64Sorter&& other) noexcept {
    *this = std::move(other);
  }
  ExternalU64Sorter& operator=(ExternalU64Sorter&& other) noexcept;
  ExternalU64Sorter(const ExternalU64Sorter&) = delete;
  ExternalU64Sorter& operator=(const ExternalU64Sorter&) = delete;
  ~ExternalU64Sorter();

  Status Add(uint64_t record);

  /// Spills the tail chunk and freezes the sorter; Add() afterwards is an
  /// error, Merge() becomes available.  Idempotent.
  Status Seal();

  StatusOr<MergeStream> Merge() const;

  uint64_t record_count() const { return record_count_; }
  size_t chunk_count() const { return chunks_.size(); }
  uint64_t spilled_bytes() const { return record_count_ * sizeof(uint64_t); }

 private:
  struct Chunk {
    uint64_t offset_records;
    uint64_t count;
  };

  ExternalU64Sorter() = default;

  Status SpillBuffer();

  Options options_;
  int fd_ = -1;
  std::string path_;
  std::vector<uint64_t> buffer_;
  std::vector<Chunk> chunks_;
  uint64_t record_count_ = 0;
  uint64_t file_records_ = 0;
  bool sealed_ = false;
};

}  // namespace tpa

#endif  // TPA_UTIL_SERIAL_H_
