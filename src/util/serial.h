#ifndef TPA_UTIL_SERIAL_H_
#define TPA_UTIL_SERIAL_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "util/status.h"

namespace tpa {

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `size` bytes.  Chain calls by
/// feeding the previous return value as `seed` (0 starts a fresh checksum).
/// Software table-based — fast enough to verify snapshot sections at load
/// time without any library dependency.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Read-only memory-mapped file (RAII over mmap/munmap).  The snapshot
/// reader hands non-owning SharedArray views into the mapping, with a
/// shared_ptr<MappedFile> as the keep-alive owner — the file pages in
/// lazily and is never copied.
class MappedFile {
 public:
  static StatusOr<MappedFile> Open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }

 private:
  MappedFile() = default;

  void* addr_ = nullptr;  // null for an empty file
  size_t size_ = 0;
};

/// Sequential binary file writer with explicit alignment control: the
/// snapshot writer lays sections on 64-byte boundaries (AlignTo pads with
/// zeros) so the mapped file satisfies every element type's alignment.
/// All errors surface as Status; Close() flushes and reports the final
/// write errors that a destructor would have to swallow.
class BinaryFileWriter {
 public:
  static StatusOr<BinaryFileWriter> Create(const std::string& path);

  BinaryFileWriter(BinaryFileWriter&& other) noexcept {
    *this = std::move(other);
  }
  BinaryFileWriter& operator=(BinaryFileWriter&& other) noexcept;
  BinaryFileWriter(const BinaryFileWriter&) = delete;
  BinaryFileWriter& operator=(const BinaryFileWriter&) = delete;
  ~BinaryFileWriter();

  Status WriteBytes(const void* data, size_t size);

  /// Pads with zero bytes until offset() is a multiple of `alignment`
  /// (a power of two).
  Status AlignTo(size_t alignment);

  /// Bytes written so far == the file offset the next write lands at.
  uint64_t offset() const { return offset_; }

  Status Close();

 private:
  BinaryFileWriter() = default;

  std::FILE* file_ = nullptr;
  uint64_t offset_ = 0;
};

}  // namespace tpa

#endif  // TPA_UTIL_SERIAL_H_
