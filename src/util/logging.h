#ifndef TPA_UTIL_LOGGING_H_
#define TPA_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace tpa {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2 };

/// Sets the minimum severity that is actually emitted; default kInfo.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

/// Stream-collecting helper behind the TPA_LOG macro.  Emits one line to
/// stderr ("[I hh:mm:ss file:line] message") on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace tpa

/// Usage: TPA_LOG(INFO) << "built graph with " << n << " nodes";
#define TPA_LOG(severity)                                        \
  ::tpa::internal_logging::LogMessage(                           \
      ::tpa::LogSeverity::k##severity, __FILE__, __LINE__)       \
      .stream()

#endif  // TPA_UTIL_LOGGING_H_
