#ifndef TPA_UTIL_CHECK_H_
#define TPA_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tpa::internal_check {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* condition,
                                   const std::string& extra) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace tpa::internal_check

/// Aborts the process with a diagnostic if `condition` is false.  Used for
/// invariants that indicate programming errors (never for recoverable input
/// validation — return a Status for that).
#define TPA_CHECK(condition)                                               \
  do {                                                                     \
    if (!(condition)) {                                                    \
      ::tpa::internal_check::CheckFail(__FILE__, __LINE__, #condition, ""); \
    }                                                                      \
  } while (0)

#define TPA_CHECK_OP_(lhs, rhs, op)                                         \
  do {                                                                      \
    auto tpa_check_lhs = (lhs);                                             \
    auto tpa_check_rhs = (rhs);                                             \
    if (!(tpa_check_lhs op tpa_check_rhs)) {                                \
      std::ostringstream tpa_check_oss;                                     \
      tpa_check_oss << "lhs=" << tpa_check_lhs << " rhs=" << tpa_check_rhs; \
      ::tpa::internal_check::CheckFail(__FILE__, __LINE__,                  \
                                       #lhs " " #op " " #rhs,               \
                                       tpa_check_oss.str());                \
    }                                                                       \
  } while (0)

#define TPA_CHECK_EQ(lhs, rhs) TPA_CHECK_OP_(lhs, rhs, ==)
#define TPA_CHECK_NE(lhs, rhs) TPA_CHECK_OP_(lhs, rhs, !=)
#define TPA_CHECK_LT(lhs, rhs) TPA_CHECK_OP_(lhs, rhs, <)
#define TPA_CHECK_LE(lhs, rhs) TPA_CHECK_OP_(lhs, rhs, <=)
#define TPA_CHECK_GT(lhs, rhs) TPA_CHECK_OP_(lhs, rhs, >)
#define TPA_CHECK_GE(lhs, rhs) TPA_CHECK_OP_(lhs, rhs, >=)

/// Like TPA_CHECK but compiled out in release builds (NDEBUG).
#ifdef NDEBUG
#define TPA_DCHECK(condition) \
  do {                        \
  } while (0)
#else
#define TPA_DCHECK(condition) TPA_CHECK(condition)
#endif

#endif  // TPA_UTIL_CHECK_H_
