#ifndef TPA_UTIL_MEMORY_BUDGET_H_
#define TPA_UTIL_MEMORY_BUDGET_H_

#include <cstddef>

#include "util/status.h"

namespace tpa {

/// Simulates the paper's 200 GB workstation memory cap.
///
/// The original evaluation omits bars for methods whose preprocessing ran out
/// of memory (> 200 GB).  Our experiments run on scaled-down graphs, so we
/// scale the cap too: a method "OOMs" when the logical size of its
/// preprocessed data exceeds the budget.  Methods ask for an allowance before
/// materializing large structures, which lets super-linear methods
/// (BEAR-APPROX, NB-LIN) fail on exactly the relative graph sizes where the
/// paper reports them failing, without actually exhausting the host.
class MemoryBudget {
 public:
  /// `limit_bytes == 0` means unlimited.
  explicit MemoryBudget(size_t limit_bytes = 0) : limit_(limit_bytes) {}

  /// Reserves `bytes`; fails with RESOURCE_EXHAUSTED when the running total
  /// would exceed the limit.
  Status Reserve(size_t bytes) {
    if (limit_ != 0 && used_ + bytes > limit_) {
      return ResourceExhaustedError("memory budget exceeded");
    }
    used_ += bytes;
    return OkStatus();
  }

  /// Releases a prior reservation (e.g. preprocessing scratch space).
  void Release(size_t bytes) { used_ = bytes > used_ ? 0 : used_ - bytes; }

  size_t used() const { return used_; }
  size_t limit() const { return limit_; }
  bool unlimited() const { return limit_ == 0; }

 private:
  size_t limit_;
  size_t used_ = 0;
};

}  // namespace tpa

#endif  // TPA_UTIL_MEMORY_BUDGET_H_
