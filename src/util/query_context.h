#ifndef TPA_UTIL_QUERY_CONTEXT_H_
#define TPA_UTIL_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <optional>

#include "util/status.h"

namespace tpa {

/// Cooperative abort + degradation contract for one running query.
///
/// A QueryContext threads from the engines through RwrMethod::Query* into
/// the CPI propagation loops, which poll it at iteration boundaries: when
/// the deadline passes or the cancel flag flips, the loop stops within one
/// iteration.  What happens next is the caller's choice:
///
///   - degrade_to_partial == false (default): the query fails with
///     kDeadlineExceeded / kCancelled and the partial iterate is discarded.
///   - degrade_to_partial == true: the current iterate is returned as an
///     ε-certified approximate answer — `error_bound` carries the certified
///     remaining-mass L1 bound (the substochastic geometric tail of the
///     iterations that never ran), so the caller knows exactly how far the
///     partial result can be from the converged one.
///
/// A null QueryContext* is the NullObserver of this scheme: every hot loop
/// takes `context = nullptr` and the check compiles down to one untaken
/// branch per iteration — the happy path costs nothing.
///
/// The struct is not synchronized; one query owns it for the duration of
/// the call.  Only `cancel` may be flipped from other threads (it is read
/// with relaxed atomics), which is how QueryTicket::Cancel() reaches a
/// query that is already running.
struct QueryContext {
  // --- Inputs (set by the caller before the query runs) ---

  /// Absolute deadline; the loop aborts at the first iteration boundary
  /// past it.  nullopt = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// External cancel flag (not owned; must outlive the query).  The loop
  /// aborts at the first iteration boundary where it reads true.
  const std::atomic<bool>* cancel = nullptr;
  /// Abort as a partial result with a certified error bound instead of an
  /// error status (the degradation contract above).
  bool degrade_to_partial = false;
  /// Run at least this many propagation iterations before honoring an
  /// abort — a degraded answer from an already-expired deadline still
  /// carries some propagation mass instead of the bare restart vector.
  int min_iterations = 0;

  // --- Outputs (written by the propagation loop on abort) ---

  /// True when the loop stopped before convergence because of this context.
  bool aborted = false;
  /// kCancelled or kDeadlineExceeded when aborted, kOk otherwise.
  StatusCode abort_code = StatusCode::kOk;
  /// Propagation iteration after which the loop stopped (-1 = no abort).
  int aborted_at_iteration = -1;
  /// Certified L1 bound on ‖partial − converged‖₁ for the returned iterate
  /// (remaining geometric mass), valid when aborted.
  double error_bound = 0.0;

  /// Polls the abort inputs: kCancelled / kDeadlineExceeded when the query
  /// should stop now, kOk otherwise.  Cheap enough for per-iteration use.
  StatusCode AbortNow() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return StatusCode::kCancelled;
    }
    if (deadline.has_value() &&
        std::chrono::steady_clock::now() >= *deadline) {
      return StatusCode::kDeadlineExceeded;
    }
    return StatusCode::kOk;
  }

  /// The error Status matching the recorded abort_code.
  Status AbortStatus() const {
    switch (abort_code) {
      case StatusCode::kCancelled:
        return CancelledError("query cancelled");
      case StatusCode::kDeadlineExceeded:
        return DeadlineExceededError("query deadline exceeded");
      default:
        return OkStatus();
    }
  }
};

/// Entry check for query paths without mid-flight abort support: fails up
/// front when the context is already cancelled / past its deadline (and
/// records the abort in the context), succeeds otherwise.  Null context =
/// OK.
inline Status CheckQueryContext(QueryContext* context) {
  if (context == nullptr) return OkStatus();
  const StatusCode code = context->AbortNow();
  if (code == StatusCode::kOk) return OkStatus();
  context->aborted = true;
  context->abort_code = code;
  context->aborted_at_iteration = 0;
  return context->AbortStatus();
}

}  // namespace tpa

#endif  // TPA_UTIL_QUERY_CONTEXT_H_
