#include "util/mem_stats.h"

#include <sys/mman.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace tpa {

namespace {

/// Parses one "Vm...:   12345 kB" line into bytes; 0 when absent.
size_t ParseKbLine(const char* line, const char* key) {
  const size_t key_len = std::strlen(key);
  if (std::strncmp(line, key, key_len) != 0) return 0;
  unsigned long long kb = 0;
  if (std::sscanf(line + key_len, " %llu", &kb) != 1) return 0;
  return static_cast<size_t>(kb) * 1024;
}

}  // namespace

MemStats ReadMemStats() {
  MemStats stats;
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return stats;
  char line[256];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (const size_t rss = ParseKbLine(line, "VmRSS:")) {
      stats.vm_rss_bytes = rss;
    } else if (const size_t hwm = ParseKbLine(line, "VmHWM:")) {
      stats.vm_hwm_bytes = hwm;
    }
    if (stats.vm_rss_bytes != 0 && stats.vm_hwm_bytes != 0) break;
  }
  std::fclose(file);
  return stats;
}

size_t PeakRssBytes() { return ReadMemStats().vm_hwm_bytes; }

ResidentSteward::ResidentSteward(Options options) : options_(options) {}

ResidentSteward::~ResidentSteward() { Stop(); }

void ResidentSteward::RegisterRegion(std::shared_ptr<const void> owner,
                                     const void* addr, size_t length) {
  if (addr == nullptr || length == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  regions_.push_back({std::move(owner), addr, length});
}

void ResidentSteward::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  const long page = ::sysconf(_SC_PAGESIZE);
  const size_t page_size = page > 0 ? static_cast<size_t>(page) : 4096;
  for (const Region& region : regions_) {
    // Align inward to full pages: a partial first/last page may share data
    // with a neighboring heap allocation in principle — mapped sections are
    // page-aligned in practice, so this is belt and braces.
    uintptr_t begin = reinterpret_cast<uintptr_t>(region.addr);
    uintptr_t end = begin + region.length;
    begin = (begin + page_size - 1) / page_size * page_size;
    end = end / page_size * page_size;
    if (end <= begin) continue;
    ::madvise(reinterpret_cast<void*>(begin), end - begin, MADV_DONTNEED);
  }
}

void ResidentSteward::Start() {
  if (options_.budget_bytes == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
  }
  thread_ = std::thread([this] { Poll(); });
}

void ResidentSteward::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

size_t ResidentSteward::drop_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drop_count_;
}

void ResidentSteward::Poll() {
  const size_t watermark = static_cast<size_t>(
      static_cast<double>(options_.budget_bytes) *
      options_.high_watermark_fraction);
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_interval_ms),
                 [this] { return !running_; });
    if (!running_) return;
    lock.unlock();
    const size_t rss = ReadMemStats().vm_rss_bytes;
    const bool over = rss != 0 && rss > watermark;
    if (over) DropAll();
    lock.lock();
    if (over) ++drop_count_;
  }
}

}  // namespace tpa
