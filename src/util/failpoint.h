#ifndef TPA_UTIL_FAILPOINT_H_
#define TPA_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace tpa {

/// Deterministic fault injection for tests.
///
/// A failpoint is a named site in the serving / propagation code where a
/// test can arm an action — return an error Status, sleep for a fixed
/// delay, or throw an exception — with deterministic skip/count gating
/// (fire on the (skip+1)-th hit, then `count` more times).  Production
/// builds compile the sites to nothing: the TPA_FAILPOINT* macros expand
/// to no-ops unless the build sets TPA_FAILPOINTS_ENABLED (CMake option
/// TPA_FAILPOINTS=ON).  Even in failpoint builds the disarmed fast path is
/// one relaxed atomic load of a global counter.
///
/// Registry functions are thread-safe; tests typically arm in the test
/// body and DisarmAllFailpoints() in TearDown.

/// What an armed failpoint does when it fires.
struct FailpointAction {
  enum class Kind : uint8_t {
    /// EvaluateFailpoint returns this error Status.
    kError,
    /// Sleep for `delay_ms`, then proceed normally (deterministic way to
    /// make a deadline expire mid-query).
    kDelay,
    /// Throw std::runtime_error(message) — exercises the engines'
    /// exception containment.
    kThrow,
  };
  Kind kind = Kind::kError;
  Status error;          // kError
  int delay_ms = 0;      // kDelay
  std::string message;   // kThrow

  static FailpointAction Error(Status status) {
    FailpointAction action;
    action.kind = Kind::kError;
    action.error = std::move(status);
    return action;
  }
  static FailpointAction Delay(int delay_ms) {
    FailpointAction action;
    action.kind = Kind::kDelay;
    action.delay_ms = delay_ms;
    return action;
  }
  static FailpointAction Throw(std::string message) {
    FailpointAction action;
    action.kind = Kind::kThrow;
    action.message = std::move(message);
    return action;
  }
};

/// Arms `name`: the action fires on hits skip+1 .. skip+count (count < 0 =
/// every hit after the skips).  Re-arming a name replaces its state.
void ArmFailpoint(std::string_view name, FailpointAction action,
                  int skip = 0, int count = -1);

/// Disarms `name` (no-op when not armed).
void DisarmFailpoint(std::string_view name);

/// Disarms everything (test teardown).
void DisarmAllFailpoints();

/// Total hits `name` has seen since it was (last) armed — counts every
/// evaluation at the site, fired or not.  0 when not armed.
int64_t FailpointHits(std::string_view name);

/// Evaluates the site `name`: fires the armed action if its skip/count
/// window says so.  kError → returns the error; kDelay → sleeps, returns
/// OK; kThrow → throws std::runtime_error.  Disarmed (the common case) →
/// returns OK via the atomic fast path.
Status EvaluateFailpoint(std::string_view name);

/// True when any failpoint is armed (the fast-path predicate, exposed for
/// tests).
bool AnyFailpointArmed();

}  // namespace tpa

/// Failpoint site macros.  TPA_FAILPOINT is for Status-returning contexts
/// (propagates an injected error); TPA_FAILPOINT_HIT is for void/hot
/// contexts (honors delays and throws, discards injected error Statuses).
#if defined(TPA_FAILPOINTS_ENABLED)
#define TPA_FAILPOINT(name) \
  TPA_RETURN_IF_ERROR(::tpa::EvaluateFailpoint(name))
#define TPA_FAILPOINT_HIT(name)                   \
  do {                                            \
    (void)::tpa::EvaluateFailpoint(name);         \
  } while (0)
#else
#define TPA_FAILPOINT(name) \
  do {                      \
  } while (0)
#define TPA_FAILPOINT_HIT(name) \
  do {                          \
  } while (0)
#endif

#endif  // TPA_UTIL_FAILPOINT_H_
