#include "util/failpoint.h"

#include <chrono>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace tpa {
namespace {

struct FailpointState {
  FailpointAction action;
  int skip = 0;
  int count = -1;
  int64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, FailpointState, std::less<>> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Disarmed fast path: sites skip the registry lock entirely while nothing
/// is armed.
std::atomic<int>& ArmedCount() {
  static std::atomic<int> armed{0};
  return armed;
}

}  // namespace

void ArmFailpoint(std::string_view name, FailpointAction action, int skip,
                  int count) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.points.insert_or_assign(
      std::string(name), FailpointState{std::move(action), skip, count, 0});
  (void)it;
  if (inserted) ArmedCount().fetch_add(1, std::memory_order_release);
}

void DisarmFailpoint(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return;
  registry.points.erase(it);
  ArmedCount().fetch_sub(1, std::memory_order_release);
}

void DisarmAllFailpoints() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  ArmedCount().fetch_sub(static_cast<int>(registry.points.size()),
                         std::memory_order_release);
  registry.points.clear();
}

int64_t FailpointHits(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

bool AnyFailpointArmed() {
  return ArmedCount().load(std::memory_order_acquire) > 0;
}

Status EvaluateFailpoint(std::string_view name) {
  if (!AnyFailpointArmed()) return OkStatus();
  FailpointAction fired;
  bool fire = false;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.points.find(name);
    if (it == registry.points.end()) return OkStatus();
    FailpointState& state = it->second;
    const int64_t hit = state.hits++;
    fire = hit >= state.skip &&
           (state.count < 0 || hit < state.skip + state.count);
    if (fire) fired = state.action;
  }
  if (!fire) return OkStatus();
  switch (fired.kind) {
    case FailpointAction::Kind::kError:
      return fired.error;
    case FailpointAction::Kind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
      return OkStatus();
    case FailpointAction::Kind::kThrow:
      throw std::runtime_error(fired.message);
  }
  return OkStatus();
}

}  // namespace tpa
