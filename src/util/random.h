#ifndef TPA_UTIL_RANDOM_H_
#define TPA_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tpa {

/// SplitMix64: a tiny, fast 64-bit generator used mostly for seeding.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (the public-domain splitmix64 finalizer).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256++: the library's workhorse PRNG (Blackman & Vigna).  Fast,
/// high-quality, 256-bit state; deterministic across platforms so that every
/// generated graph and every Monte Carlo experiment is reproducible from its
/// seed alone.
class Rng {
 public:
  /// Seeds the four state words through SplitMix64 as recommended by the
  /// xoshiro authors (avoids low-entropy all-zero-ish states).
  explicit Rng(uint64_t seed = 0x2545f4914f6cdd1dULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound).  `bound` must be > 0.  Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Samples `count` distinct values from [0, population) (Floyd's
  /// algorithm); returned in unspecified order.  Requires count <= population.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t population,
                                                 uint64_t count);

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Weighted discrete sampling in O(1) per draw after O(n) setup.
/// Classic Walker/Vose alias method; used by the degree-corrected block-model
/// generator to draw endpoints proportional to node weights.
class AliasSampler {
 public:
  /// `weights` must be non-empty with non-negative entries and positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability weight[i]/sum(weights).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace tpa

#endif  // TPA_UTIL_RANDOM_H_
