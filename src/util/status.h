#ifndef TPA_UTIL_STATUS_H_
#define TPA_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tpa {

/// Canonical error codes, modeled after the subset of absl::StatusCode that a
/// self-contained library needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kCancelled = 8,
  kDeadlineExceeded = 9,
};

/// Returns a human-readable name for `code` (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error carrier used by every fallible API in this library.
///
/// The library does not throw exceptions; operations that can fail return a
/// `Status` (or `StatusOr<T>` when they also produce a value).  An OK status
/// carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors mirroring absl's free functions.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status CancelledError(std::string message);
Status DeadlineExceededError(std::string message);

/// Union of a `Status` and a value of type `T`.
///
/// Accessing the value of a non-OK StatusOr aborts the program (this library
/// treats it as a programming error, consistent with its no-exceptions
/// policy).  Check `ok()` or use `value_or` style flows first.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from a value: a successful result.
  StatusOr(T value) : status_(OkStatus()), value_(std::move(value)) {}
  /// Implicit conversion from a non-OK status: a failed result.
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
[[noreturn]] void DieBecauseStatusNotOk(const Status& status);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::AbortIfNotOk() const {
  if (!status_.ok()) internal_status::DieBecauseStatusNotOk(status_);
}

/// Propagates a non-OK status out of the current function.
#define TPA_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::tpa::Status tpa_status_macro_value = (expr);  \
    if (!tpa_status_macro_value.ok()) {             \
      return tpa_status_macro_value;                \
    }                                               \
  } while (0)

/// Evaluates `rexpr` (a StatusOr<T>), propagating failure, else assigns the
/// value to `lhs`.  `lhs` may include a declaration, e.g.
/// `TPA_ASSIGN_OR_RETURN(auto g, LoadGraph(path));`
#define TPA_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  TPA_ASSIGN_OR_RETURN_IMPL_(                             \
      TPA_STATUS_MACRO_CONCAT_(statusor_, __LINE__), lhs, rexpr)

#define TPA_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) {                                  \
    return statusor.status();                            \
  }                                                      \
  lhs = std::move(statusor).value()

#define TPA_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define TPA_STATUS_MACRO_CONCAT_(x, y) TPA_STATUS_MACRO_CONCAT_INNER_(x, y)

}  // namespace tpa

#endif  // TPA_UTIL_STATUS_H_
