#include "util/serial.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <functional>
#include <utility>

#include "util/failpoint.h"

namespace tpa {

namespace {

/// The CRC-32 lookup table for the reflected IEEE polynomial 0xEDB88320,
/// built once at static-init time.
std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

Status ErrnoError(const std::string& action, const std::string& path) {
  if (errno == ENOSPC || errno == EDQUOT) {
    return ResourceExhaustedError(action + " '" + path +
                                  "': " + std::strerror(errno));
  }
  return InternalError(action + " '" + path + "': " + std::strerror(errno));
}

/// Full-length pwrite with partial-write retry; errno is preserved on error.
bool PwriteAll(int fd, const void* data, size_t size, uint64_t offset) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  while (size > 0) {
    const ssize_t written =
        ::pwrite(fd, bytes, size, static_cast<off_t>(offset));
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (written == 0) {
      errno = EIO;
      return false;
    }
    bytes += written;
    size -= static_cast<size_t>(written);
    offset += static_cast<uint64_t>(written);
  }
  return true;
}

/// Full-length pread; a short read (EOF before `size`) is an error here
/// because the sorter knows exactly how many records each chunk holds.
bool PreadAll(int fd, void* data, size_t size, uint64_t offset) {
  uint8_t* bytes = static_cast<uint8_t*>(data);
  while (size > 0) {
    const ssize_t got = ::pread(fd, bytes, size, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) {
      errno = EIO;
      return false;
    }
    bytes += got;
    size -= static_cast<size_t>(got);
    offset += static_cast<uint64_t>(got);
  }
  return true;
}

int ToMadvise(MappedAdvice advice) {
  switch (advice) {
    case MappedAdvice::kNormal: return MADV_NORMAL;
    case MappedAdvice::kSequential: return MADV_SEQUENTIAL;
    case MappedAdvice::kRandom: return MADV_RANDOM;
    case MappedAdvice::kWillNeed: return MADV_WILLNEED;
    case MappedAdvice::kDontNeed: return MADV_DONTNEED;
  }
  return MADV_NORMAL;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrc32Table();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = ErrnoError("cannot stat", path);
    ::close(fd);
    return status;
  }
  MappedFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = ErrnoError("cannot mmap", path);
      ::close(fd);
      return status;
    }
    file.addr_ = addr;
  }
  ::close(fd);  // the mapping outlives the descriptor
  return file;
}

StatusOr<MappedFile> MappedFile::Create(const std::string& path, size_t size) {
  if (size == 0) {
    return InvalidArgumentError("MappedFile::Create needs a positive size");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoError("cannot create", path);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    const Status status = ErrnoError("cannot size", path);
    ::close(fd);
    return status;
  }
  void* addr =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (addr == MAP_FAILED) {
    const Status status = ErrnoError("cannot mmap", path);
    ::close(fd);
    return status;
  }
  ::close(fd);  // MAP_SHARED keeps the file reference
  MappedFile file;
  file.addr_ = addr;
  file.size_ = size;
  file.writable_ = true;
  return file;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    writable_ = std::exchange(other.writable_, false);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

Status MappedFile::Sync() {
  if (!writable_) {
    return FailedPreconditionError("Sync on a read-only mapping");
  }
  TPA_FAILPOINT("serial.msync");
  if (addr_ != nullptr && ::msync(addr_, size_, MS_SYNC) != 0) {
    return ErrnoError("cannot msync", "<mapped file>");
  }
  return OkStatus();
}

Status MappedFile::Advise(MappedAdvice advice, size_t offset,
                          size_t length) const {
  if (addr_ == nullptr || offset >= size_) return OkStatus();
  if (length == 0 || offset + length > size_) length = size_ - offset;
  const long page = ::sysconf(_SC_PAGESIZE);
  const size_t page_size = page > 0 ? static_cast<size_t>(page) : 4096;
  // madvise wants a page-aligned start; widen the range down to the page
  // the offset falls in.
  const size_t aligned = offset / page_size * page_size;
  length += offset - aligned;
  uint8_t* base = static_cast<uint8_t*>(addr_) + aligned;
  if (::madvise(base, length, ToMadvise(advice)) != 0) {
    return InternalError(std::string("madvise failed: ") +
                         std::strerror(errno));
  }
  return OkStatus();
}

StatusOr<BinaryFileWriter> BinaryFileWriter::Create(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return ErrnoError("cannot create", path);
  BinaryFileWriter writer;
  writer.file_ = file;
  return writer;
}

BinaryFileWriter& BinaryFileWriter::operator=(
    BinaryFileWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    offset_ = std::exchange(other.offset_, 0);
  }
  return *this;
}

BinaryFileWriter::~BinaryFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryFileWriter::WriteBytes(const void* data, size_t size) {
  if (file_ == nullptr) {
    return FailedPreconditionError("writer is closed or moved-from");
  }
  if (size == 0) return OkStatus();
  if (std::fwrite(data, 1, size, file_) != size) {
    return InternalError("short write to snapshot file");
  }
  offset_ += size;
  return OkStatus();
}

Status BinaryFileWriter::AlignTo(size_t alignment) {
  const uint64_t misalign = offset_ % alignment;
  if (misalign == 0) return OkStatus();
  static constexpr uint8_t kZeros[64] = {};
  uint64_t padding = alignment - misalign;
  while (padding > 0) {
    const size_t chunk =
        padding < sizeof(kZeros) ? static_cast<size_t>(padding)
                                 : sizeof(kZeros);
    TPA_RETURN_IF_ERROR(WriteBytes(kZeros, chunk));
    padding -= chunk;
  }
  return OkStatus();
}

Status BinaryFileWriter::Close() {
  if (file_ == nullptr) {
    return FailedPreconditionError("writer is closed or moved-from");
  }
  const int status = std::fclose(file_);
  file_ = nullptr;
  if (status != 0) return InternalError("cannot flush snapshot file");
  return OkStatus();
}

StatusOr<ExternalU64Sorter> ExternalU64Sorter::Create(Options options) {
  if (options.spill_path.empty()) {
    return InvalidArgumentError("ExternalU64Sorter needs a spill_path");
  }
  if (options.chunk_records == 0 || options.merge_buffer_records == 0) {
    return InvalidArgumentError(
        "ExternalU64Sorter chunk_records and merge_buffer_records must be "
        "positive");
  }
  const int fd =
      ::open(options.spill_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoError("cannot create spill file", options.spill_path);
  ExternalU64Sorter sorter;
  sorter.path_ = options.spill_path;
  sorter.options_ = std::move(options);
  sorter.fd_ = fd;
  sorter.buffer_.reserve(sorter.options_.chunk_records);
  return sorter;
}

ExternalU64Sorter& ExternalU64Sorter::operator=(
    ExternalU64Sorter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
      ::unlink(path_.c_str());
    }
    options_ = std::move(other.options_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    buffer_ = std::move(other.buffer_);
    chunks_ = std::move(other.chunks_);
    record_count_ = std::exchange(other.record_count_, 0);
    file_records_ = std::exchange(other.file_records_, 0);
    sealed_ = std::exchange(other.sealed_, false);
  }
  return *this;
}

ExternalU64Sorter::~ExternalU64Sorter() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

Status ExternalU64Sorter::Add(uint64_t record) {
  if (sealed_) return FailedPreconditionError("Add after Seal");
  if (fd_ < 0) return FailedPreconditionError("sorter is moved-from");
  buffer_.push_back(record);
  record_count_++;
  if (buffer_.size() >= options_.chunk_records) return SpillBuffer();
  return OkStatus();
}

Status ExternalU64Sorter::SpillBuffer() {
  if (buffer_.empty()) return OkStatus();
  std::sort(buffer_.begin(), buffer_.end());
  TPA_FAILPOINT("builder.spill");
  if (!PwriteAll(fd_, buffer_.data(), buffer_.size() * sizeof(uint64_t),
                 file_records_ * sizeof(uint64_t))) {
    return ErrnoError("cannot spill sort chunk to", path_);
  }
  chunks_.push_back({file_records_, buffer_.size()});
  file_records_ += buffer_.size();
  buffer_.clear();
  return OkStatus();
}

Status ExternalU64Sorter::Seal() {
  if (sealed_) return OkStatus();
  if (fd_ < 0) return FailedPreconditionError("sorter is moved-from");
  TPA_RETURN_IF_ERROR(SpillBuffer());
  buffer_.shrink_to_fit();  // release the chunk buffer before the merge
  sealed_ = true;
  return OkStatus();
}

StatusOr<ExternalU64Sorter::MergeStream> ExternalU64Sorter::Merge() const {
  if (!sealed_) return FailedPreconditionError("Merge before Seal");
  MergeStream stream;
  stream.fd_ = fd_;
  stream.buffer_records_ = options_.merge_buffer_records;
  stream.sources_.resize(chunks_.size());
  stream.heap_.reserve(chunks_.size());
  for (size_t i = 0; i < chunks_.size(); ++i) {
    MergeStream::Source& source = stream.sources_[i];
    source.next_offset_records = chunks_[i].offset_records;
    source.remaining_records = chunks_[i].count;
    if (!stream.Refill(i)) {
      if (!stream.status_.ok()) return stream.status_;
      continue;  // empty chunk (cannot happen today, but harmless)
    }
    stream.heap_.emplace_back(source.buffer[source.cursor++],
                              static_cast<uint32_t>(i));
  }
  std::make_heap(stream.heap_.begin(), stream.heap_.end(),
                 std::greater<std::pair<uint64_t, uint32_t>>());
  return stream;
}

bool ExternalU64Sorter::MergeStream::Refill(size_t source_index) {
  Source& source = sources_[source_index];
  if (source.cursor < source.buffer.size()) return true;
  if (source.remaining_records == 0) return false;
  if (!status_.ok()) return false;
  const Status injected = [] {
    TPA_FAILPOINT("builder.merge");
    return OkStatus();
  }();
  if (!injected.ok()) {
    status_ = injected;
    return false;
  }
  const size_t want = static_cast<size_t>(std::min<uint64_t>(
      source.remaining_records, buffer_records_));
  source.buffer.resize(want);
  source.cursor = 0;
  if (!PreadAll(fd_, source.buffer.data(), want * sizeof(uint64_t),
                source.next_offset_records * sizeof(uint64_t))) {
    status_ = InternalError(std::string("cannot read sort chunk: ") +
                            std::strerror(errno));
    return false;
  }
  source.next_offset_records += want;
  source.remaining_records -= want;
  return true;
}

bool ExternalU64Sorter::MergeStream::Next(uint64_t* record) {
  if (heap_.empty() || !status_.ok()) return false;
  std::pop_heap(heap_.begin(), heap_.end(),
                std::greater<std::pair<uint64_t, uint32_t>>());
  const auto [value, source_index] = heap_.back();
  *record = value;
  Source& source = sources_[source_index];
  if (source.cursor < source.buffer.size() || Refill(source_index)) {
    heap_.back() = {source.buffer[source.cursor++], source_index};
    std::push_heap(heap_.begin(), heap_.end(),
                   std::greater<std::pair<uint64_t, uint32_t>>());
  } else {
    heap_.pop_back();
    if (!status_.ok()) return false;  // refill error, not exhaustion
  }
  return true;
}

}  // namespace tpa
