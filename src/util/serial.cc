#include "util/serial.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

namespace tpa {

namespace {

/// The CRC-32 lookup table for the reflected IEEE polynomial 0xEDB88320,
/// built once at static-init time.
std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

Status ErrnoError(const std::string& action, const std::string& path) {
  return InternalError(action + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrc32Table();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = ErrnoError("cannot stat", path);
    ::close(fd);
    return status;
  }
  MappedFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = ErrnoError("cannot mmap", path);
      ::close(fd);
      return status;
    }
    file.addr_ = addr;
  }
  ::close(fd);  // the mapping outlives the descriptor
  return file;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

StatusOr<BinaryFileWriter> BinaryFileWriter::Create(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return ErrnoError("cannot create", path);
  BinaryFileWriter writer;
  writer.file_ = file;
  return writer;
}

BinaryFileWriter& BinaryFileWriter::operator=(
    BinaryFileWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    offset_ = std::exchange(other.offset_, 0);
  }
  return *this;
}

BinaryFileWriter::~BinaryFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryFileWriter::WriteBytes(const void* data, size_t size) {
  if (file_ == nullptr) {
    return FailedPreconditionError("writer is closed or moved-from");
  }
  if (size == 0) return OkStatus();
  if (std::fwrite(data, 1, size, file_) != size) {
    return InternalError("short write to snapshot file");
  }
  offset_ += size;
  return OkStatus();
}

Status BinaryFileWriter::AlignTo(size_t alignment) {
  const uint64_t misalign = offset_ % alignment;
  if (misalign == 0) return OkStatus();
  static constexpr uint8_t kZeros[64] = {};
  uint64_t padding = alignment - misalign;
  while (padding > 0) {
    const size_t chunk =
        padding < sizeof(kZeros) ? static_cast<size_t>(padding)
                                 : sizeof(kZeros);
    TPA_RETURN_IF_ERROR(WriteBytes(kZeros, chunk));
    padding -= chunk;
  }
  return OkStatus();
}

Status BinaryFileWriter::Close() {
  if (file_ == nullptr) {
    return FailedPreconditionError("writer is closed or moved-from");
  }
  const int status = std::fclose(file_);
  file_ = nullptr;
  if (status != 0) return InternalError("cannot flush snapshot file");
  return OkStatus();
}

}  // namespace tpa
