#ifndef TPA_UTIL_MEM_STATS_H_
#define TPA_UTIL_MEM_STATS_H_

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace tpa {

/// Resident-memory counters of this process, read from /proc/self/status.
/// VmRSS is the current resident set; VmHWM is its lifetime high-water mark
/// — the number the out-of-core pipeline's budget acceptance is judged by,
/// because a budget that was ever exceeded stays exceeded in VmHWM no
/// matter how quickly pages were dropped afterwards.
struct MemStats {
  size_t vm_rss_bytes = 0;
  size_t vm_hwm_bytes = 0;
};

/// Reads the current counters.  On platforms or sandboxes without
/// /proc/self/status both fields are 0 — callers treating 0 as "unknown"
/// (the bench JSON writers) degrade gracefully.
MemStats ReadMemStats();

/// The lifetime peak resident set (VmHWM), or 0 when unavailable.
size_t PeakRssBytes();

/// Keeps the resident set under a byte budget while streaming over mmap'd
/// regions far larger than that budget.
///
/// The mechanism: file-backed MAP_SHARED / unmodified MAP_PRIVATE pages can
/// be dropped from the resident set at any time with madvise(MADV_DONTNEED)
/// — re-access faults them back from the page cache (or disk) with
/// identical contents, so correctness is untouched and only the fault cost
/// is paid.  A steward thread polls VmRSS on a short interval and, whenever
/// it crosses `high_watermark_fraction · budget`, drops every registered
/// region.  Because the mapped bytes enter the resident set at the speed of
/// the compute sweeping them (a CSR kernel pages in well under a few GB/s),
/// a poll measured in milliseconds bounds the overshoot to a few tens of
/// megabytes — which is what the watermark headroom is for.
///
/// Registered regions must stay mapped while registered; the keep-alive
/// shared_ptr (e.g. the MappedFile behind the views) enforces that.  Heap
/// allocations are not reclaimable this way — the budget must leave room
/// for the pipeline's O(n) work vectors; the steward only keeps the O(nnz)
/// mapped traffic from accumulating on top.
class ResidentSteward {
 public:
  struct Options {
    /// The hard resident budget the caller wants VmHWM to stay under.
    /// 0 disables the steward entirely (Start is a no-op).
    size_t budget_bytes = 0;
    /// Drop registered regions once VmRSS exceeds this fraction of the
    /// budget.  The gap to 1.0 is the overshoot headroom.
    double high_watermark_fraction = 0.8;
    /// Poll period.  Smaller bounds the overshoot tighter and costs one
    /// /proc read per poll.
    int poll_interval_ms = 10;
  };

  explicit ResidentSteward(Options options);
  ~ResidentSteward();

  ResidentSteward(const ResidentSteward&) = delete;
  ResidentSteward& operator=(const ResidentSteward&) = delete;

  /// Registers [addr, addr+length) for dropping.  `owner` pins the mapping
  /// for as long as the region stays registered.  Safe while running.
  void RegisterRegion(std::shared_ptr<const void> owner, const void* addr,
                      size_t length);

  /// Drops every registered region now (madvise(MADV_DONTNEED)),
  /// regardless of the watermark — phase boundaries call this so one
  /// phase's streamed pages never count against the next phase's headroom.
  void DropAll();

  /// Starts / stops the polling thread (no-ops when budget_bytes == 0 or
  /// already in the requested state).  The destructor stops.
  void Start();
  void Stop();

  /// Number of watermark-triggered drop sweeps so far (observability).
  size_t drop_count() const;

  const Options& options() const { return options_; }

 private:
  struct Region {
    std::shared_ptr<const void> owner;
    const void* addr;
    size_t length;
  };

  void Poll();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Region> regions_;
  size_t drop_count_ = 0;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace tpa

#endif  // TPA_UTIL_MEM_STATS_H_
