#ifndef TPA_UTIL_CACHE_INFO_H_
#define TPA_UTIL_CACHE_INFO_H_

#include <cstddef>

namespace tpa {

/// Size in bytes of the last-level data cache of cpu0, read from the Linux
/// sysfs cache topology (`/sys/devices/system/cpu/cpu0/cache/index*/`).
/// Falls back to `fallback_bytes` when the topology is unreadable (non-Linux
/// hosts, restricted containers).  The result feeds the query engine's
/// batch_block_size heuristic: grouped SpMM serving pays off once the CSR
/// arrays outgrow this.
size_t DetectLastLevelCacheBytes(size_t fallback_bytes = 8ull << 20);

}  // namespace tpa

#endif  // TPA_UTIL_CACHE_INFO_H_
