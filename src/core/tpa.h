#ifndef TPA_CORE_TPA_H_
#define TPA_CORE_TPA_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/cpi.h"
#include "core/workspace_pool.h"
#include "graph/graph.h"
#include "la/dense_block.h"
#include "la/precision.h"
#include "util/query_context.h"
#include "util/status.h"

namespace tpa {

namespace snapshot {
struct LoadedSnapshot;
struct LoadOptions;
}  // namespace snapshot

/// TPA parameters.  The defaults are the paper's global settings; S and T
/// are tuned per dataset (Table II) and available through DatasetSpec.
struct TpaOptions {
  /// Restart probability c.
  double restart_probability = 0.15;
  /// CPI convergence tolerance ε.
  double tolerance = 1e-9;
  /// S: starting iteration of the neighbor part.  The online phase computes
  /// exactly the family iterations 0 .. S-1.
  int family_window = 5;
  /// T: starting iteration of the stranger part.  Iterations S .. T-1 are
  /// estimated by scaling the family part; T .. ∞ by the PageRank tail.
  int stranger_start = 10;
  /// Matvec flavor (ablation knob; results identical).
  bool use_pull = false;
  /// Sparse/dense crossover of the adaptive propagation head, forwarded to
  /// CpiOptions::frontier_density_threshold (results identical at any
  /// setting; see that field).
  double frontier_density_threshold = 0.125;
  /// The crossover used by QueryTopK instead of the one above.  A top-k
  /// query never materializes the dense merge, so its optimum shifts far
  /// toward staying sparse: on the scale-17 R-MAT serving host the family
  /// propagation alone bottoms out near 0.002 (2.44 ms/query vs 3.85 dense)
  /// while full queries — which pay the dense merge regardless — prefer the
  /// 0.125 default.  Results identical at any setting.
  double topk_frontier_density_threshold = 0.002;
  /// Optional fork-join runner for the dense tail of QueryBatch (forwarded
  /// to CpiOptions::task_runner; the engine wires its ThreadPool in via
  /// set_task_runner).  Not owned.
  la::TaskRunner* task_runner = nullptr;
};

/// Two Phase Approximation for RWR (the paper's proposed method).
///
/// Usage:
///   TPA_ASSIGN_OR_RETURN(Tpa tpa, Tpa::Preprocess(graph, options));
///   std::vector<double> scores = tpa.Query(seed);
///
/// `Preprocess` runs Algorithm 2 once per graph (PageRank stranger tail via
/// CPI); `Query` runs Algorithm 3 per seed (S sparse matvecs + two scaled
/// vector adds).  The Tpa object borrows the graph: it must not outlive it.
///
/// The precision tier follows the graph (Graph::value_precision): on an
/// fp32 graph the stranger tail is precomputed, stored, and every query's
/// propagation run entirely on fp32 storage — half the bytes end to end.
/// QueryF / QueryBatchF expose the native fp32 results; the historical
/// fp64-typed surface (Query, QueryBatch, …) stays available at either tier
/// and widens the fp32 result once at the boundary on an fp32 graph.
class Tpa {
 public:
  /// Algorithm 2: computes the PageRank tail r̃_stranger = Σ_{i≥T} x(i) at
  /// the graph's precision tier.
  static StatusOr<Tpa> Preprocess(const Graph& graph,
                                  const TpaOptions& options);

  /// Reassembles a preprocessed instance from previously computed state —
  /// the snapshot load path.  Validates the options and that exactly the
  /// graph's tier is populated with n-length arrays; every query against
  /// the result is bitwise-identical to one against the Preprocess run that
  /// produced the arrays.  Like Preprocess, borrows the graph.
  static StatusOr<Tpa> FromPreprocessedState(
      const Graph& graph, const TpaOptions& options,
      std::vector<double> stranger, std::vector<float> stranger_f,
      std::vector<NodeId> stranger_order);

  /// Serializes this instance's full serving state (graph included) into a
  /// versioned, checksummed snapshot file — see snapshot::WriteSnapshot.
  Status SaveSnapshot(const std::string& path) const;

  /// Opens a snapshot written by SaveSnapshot and reassembles the serving
  /// state (graph + preprocessed Tpa) — see snapshot::LoadSnapshot.  The
  /// overload without options maps the file and verifies checksums (the
  /// defaults).
  static StatusOr<snapshot::LoadedSnapshot> LoadSnapshot(
      const std::string& path);
  static StatusOr<snapshot::LoadedSnapshot> LoadSnapshot(
      const std::string& path, const snapshot::LoadOptions& options);

  /// Algorithm 3: approximate RWR vector for `seed`.
  /// CHECK-fails on an out-of-range seed (programming error).
  std::vector<double> Query(NodeId seed) const;

  /// Native fp32 Algorithm 3 (CHECK-fails unless the graph is fp32): the
  /// serving hot path of the halved-footprint tier — no fp64 vector is
  /// materialized anywhere between the seed and the returned scores.
  std::vector<float> QueryF(NodeId seed) const;

  /// Bound-driven top-k Algorithm 3 at the graph's tier: the family CPI
  /// runs under Cpi::RunTopKT with the stranger tail as the merge baseline,
  /// so the query terminates once the k-th candidate is separated from
  /// every other node's remaining-mass upper bound and never materializes
  /// the dense merge.  The returned ranking always equals
  /// TopKScores(Query(seed), k); with early termination disabled the scores
  /// too are bitwise that path's (see TopKQueryOptions).  CHECK-fails on an
  /// out-of-range seed or negative k.
  TopKQueryResult QueryTopK(NodeId seed, int k,
                            const TopKQueryOptions& topk_options = {}) const;

  /// Status-returning QueryTopK with cooperative abort: same ranking
  /// contract, but invalid inputs and context aborts (kCancelled /
  /// kDeadlineExceeded — top-k never degrades, see Cpi::RunTopKT) come back
  /// as errors instead of CHECK-failing.  The serving engines route here.
  StatusOr<TopKQueryResult> QueryTopK(NodeId seed, int k,
                                      const TopKQueryOptions& topk_options,
                                      QueryContext* context) const;

  /// Batched Algorithm 3: one approximate RWR vector per seed, computed for
  /// the whole batch at once.  The S family iterations run as one SpMM
  /// chain (a single traversal of the Ã^T CSR arrays per iteration, shared
  /// by all B seeds) and the Lemma-2 scale + stranger add are blocked
  /// vector ops — so vector b of the result is bitwise-identical to
  /// Query(seeds[b]).  Fails on an empty batch or an out-of-range seed.
  ///
  /// `contexts`, when non-empty, aligns index-for-index with `seeds` (null
  /// entries allowed) and gives each seed its own cooperative abort: an
  /// aborting seed freezes out of the shared SpMM (Cpi::RunBatchT) and its
  /// context carries the merged partial's certified error bound — already
  /// through the Lemma-2 post-scale, so it bounds the returned vector.
  StatusOr<la::DenseBlock> QueryBatch(
      std::span<const NodeId> seeds,
      std::span<QueryContext* const> contexts = {}) const;

  /// Native fp32 batch (CHECK-fails unless the graph is fp32); vector b is
  /// bitwise-identical to QueryF(seeds[b]).
  StatusOr<la::DenseBlockF> QueryBatchF(
      std::span<const NodeId> seeds,
      std::span<QueryContext* const> contexts = {}) const;

  /// Personalized-PageRank generalization: approximate RWR for a *set* of
  /// seeds restarted uniformly (Section II-C notes CPI supports seed sets;
  /// TPA's two approximations apply unchanged because both are linear in
  /// the seed vector).  Fails on an empty or out-of-range seed set.
  ///
  /// A non-null `context` makes the query cooperatively abortable at
  /// iteration boundaries; on abort the partial merged vector is still
  /// returned (context->error_bound certifies it, post-scale included) —
  /// the caller decides between degrading and failing.
  StatusOr<std::vector<double>> QueryPersonalized(
      const std::vector<NodeId>& seeds, QueryContext* context = nullptr) const;

  /// Native fp32 QueryPersonalized (fails unless the graph is fp32): the
  /// Status-returning twin of QueryF the serving engines route through,
  /// with the same abort contract as QueryPersonalized.
  StatusOr<std::vector<float>> QueryPersonalizedF(
      const std::vector<NodeId>& seeds, QueryContext* context = nullptr) const;

  /// The decomposition Algorithm 3 produces, exposed for the accuracy
  /// experiments (Table III, Figures 8–9).  Always fp64-typed; on an fp32
  /// graph each part is computed at fp32 and widened.
  struct QueryParts {
    std::vector<double> family;        // exact r_family
    std::vector<double> neighbor_est;  // r̃_neighbor (scaled family)
    std::vector<double> total;         // r_TPA
  };
  QueryParts QueryDecomposed(NodeId seed) const;

  /// The precomputed approximate stranger vector (PageRank tail) at the
  /// fp64 tier; empty on an fp32 graph (see stranger_scores_f32).
  const std::vector<double>& stranger_scores() const { return stranger_; }
  /// The fp32-tier stranger vector; empty on an fp64 graph.
  const std::vector<float>& stranger_scores_f32() const {
    return stranger_f_;
  }

  /// All node ids ranked by stranger value descending (ties toward the
  /// smaller id) — QueryTopK's never-touched candidate order; always n
  /// entries (either tier).
  const std::vector<NodeId>& stranger_order() const { return stranger_order_; }

  /// The precision tier this instance runs at (== the graph's).
  la::Precision precision() const { return precision_; }

  /// Lemma 2 scaling factor ‖r_neighbor‖₁ / ‖r_family‖₁ =
  /// ((1-c)^S − (1-c)^T) / (1 − (1-c)^S).
  double NeighborScale() const;

  /// Logical size of the preprocessed data: one value per node at the
  /// graph's precision tier (8 bytes fp64, 4 bytes fp32).  This is the
  /// paper's preprocessed-storage metric, so the top-k path's stranger
  /// ranking (stranger_order_, a derived index) is deliberately excluded —
  /// the experiments' storage comparisons stay comparable across PRs.
  size_t PreprocessedBytes() const {
    return stranger_.size() * sizeof(double) +
           stranger_f_.size() * sizeof(float);
  }

  const TpaOptions& options() const { return options_; }

  /// The graph this instance was preprocessed against (borrowed).
  const Graph& graph() const { return *graph_; }

  /// Installs (or clears) the fork-join runner used by QueryBatch's dense
  /// tail.  Queries already in flight keep the runner they started with;
  /// call before serving.
  void set_task_runner(la::TaskRunner* runner) {
    options_.task_runner = runner;
  }

  /// The propagation-workspace pool shared by every query against this
  /// preprocessed state: one workspace per *concurrent* query, checked out
  /// per call, warm regardless of which serving thread runs it (exposed so
  /// tests can pin created() to the serving concurrency).
  const WorkspacePool& workspace_pool() const { return *workspaces_; }

 private:
  Tpa(const Graph* graph, TpaOptions options, std::vector<double> stranger,
      std::vector<float> stranger_f, std::vector<NodeId> stranger_order)
      : graph_(graph),
        options_(options),
        precision_(graph->value_precision()),
        stranger_(std::move(stranger)),
        stranger_f_(std::move(stranger_f)),
        stranger_order_(std::move(stranger_order)),
        workspaces_(std::make_shared<WorkspacePool>()) {}

  /// The stranger tail at tier V (the populated one of the two).
  template <typename V>
  const std::vector<V>& StrangerT() const;

  /// The fused Algorithm 3 merge at tier V; the typed public entry points
  /// are thin shims over these.
  template <typename V>
  StatusOr<std::vector<V>> QueryPersonalizedT(
      const std::vector<NodeId>& seeds, QueryContext* context = nullptr) const;
  template <typename V>
  StatusOr<la::DenseBlockT<V>> QueryBatchT(
      std::span<const NodeId> seeds,
      std::span<QueryContext* const> contexts = {}) const;

  CpiOptions FamilyCpiOptions() const;

  const Graph* graph_;  // not owned
  TpaOptions options_;
  la::Precision precision_;
  std::vector<double> stranger_;   // populated at the fp64 tier
  std::vector<float> stranger_f_;  // populated at the fp32 tier
  /// All node ids ranked by stranger value descending (ties toward the
  /// smaller id): QueryTopK's base order, letting the bound-driven merge
  /// offer only the k+1 best never-touched candidates.
  std::vector<NodeId> stranger_order_;
  /// shared_ptr keeps Tpa movable (WorkspacePool owns a mutex).
  std::shared_ptr<WorkspacePool> workspaces_;
};

/// Theoretical L1 error bounds (Lemmas 1, 3; Theorem 2).
double StrangerErrorBound(double restart_probability, int stranger_start);
double NeighborErrorBound(double restart_probability, int family_window,
                          int stranger_start);
double TotalErrorBound(double restart_probability, int family_window);

/// Validates a TpaOptions bundle (c, ε ranges; 1 ≤ S < T).
Status ValidateTpaOptions(const TpaOptions& options);

}  // namespace tpa

#endif  // TPA_CORE_TPA_H_
