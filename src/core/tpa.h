#ifndef TPA_CORE_TPA_H_
#define TPA_CORE_TPA_H_

#include <memory>
#include <span>
#include <vector>

#include "core/cpi.h"
#include "core/workspace_pool.h"
#include "graph/graph.h"
#include "la/dense_block.h"
#include "util/status.h"

namespace tpa {

/// TPA parameters.  The defaults are the paper's global settings; S and T
/// are tuned per dataset (Table II) and available through DatasetSpec.
struct TpaOptions {
  /// Restart probability c.
  double restart_probability = 0.15;
  /// CPI convergence tolerance ε.
  double tolerance = 1e-9;
  /// S: starting iteration of the neighbor part.  The online phase computes
  /// exactly the family iterations 0 .. S-1.
  int family_window = 5;
  /// T: starting iteration of the stranger part.  Iterations S .. T-1 are
  /// estimated by scaling the family part; T .. ∞ by the PageRank tail.
  int stranger_start = 10;
  /// Matvec flavor (ablation knob; results identical).
  bool use_pull = false;
  /// Sparse/dense crossover of the adaptive propagation head, forwarded to
  /// CpiOptions::frontier_density_threshold (results identical at any
  /// setting; see that field).
  double frontier_density_threshold = 0.125;
  /// Optional fork-join runner for the dense tail of QueryBatch (forwarded
  /// to CpiOptions::task_runner; the engine wires its ThreadPool in via
  /// set_task_runner).  Not owned.
  la::TaskRunner* task_runner = nullptr;
};

/// Two Phase Approximation for RWR (the paper's proposed method).
///
/// Usage:
///   TPA_ASSIGN_OR_RETURN(Tpa tpa, Tpa::Preprocess(graph, options));
///   std::vector<double> scores = tpa.Query(seed);
///
/// `Preprocess` runs Algorithm 2 once per graph (PageRank stranger tail via
/// CPI); `Query` runs Algorithm 3 per seed (S sparse matvecs + two scaled
/// vector adds).  The Tpa object borrows the graph: it must not outlive it.
class Tpa {
 public:
  /// Algorithm 2: computes the PageRank tail r̃_stranger = Σ_{i≥T} x(i).
  static StatusOr<Tpa> Preprocess(const Graph& graph, const TpaOptions& options);

  /// Algorithm 3: approximate RWR vector for `seed`.
  /// CHECK-fails on an out-of-range seed (programming error).
  std::vector<double> Query(NodeId seed) const;

  /// Batched Algorithm 3: one approximate RWR vector per seed, computed for
  /// the whole batch at once.  The S family iterations run as one SpMM
  /// chain (a single traversal of the Ã^T CSR arrays per iteration, shared
  /// by all B seeds) and the Lemma-2 scale + stranger add are blocked
  /// vector ops — so vector b of the result is bitwise-identical to
  /// Query(seeds[b]).  Fails on an empty batch or an out-of-range seed.
  StatusOr<la::DenseBlock> QueryBatch(std::span<const NodeId> seeds) const;

  /// Personalized-PageRank generalization: approximate RWR for a *set* of
  /// seeds restarted uniformly (Section II-C notes CPI supports seed sets;
  /// TPA's two approximations apply unchanged because both are linear in
  /// the seed vector).  Fails on an empty or out-of-range seed set.
  StatusOr<std::vector<double>> QueryPersonalized(
      const std::vector<NodeId>& seeds) const;

  /// The decomposition Algorithm 3 produces, exposed for the accuracy
  /// experiments (Table III, Figures 8–9).
  struct QueryParts {
    std::vector<double> family;        // exact r_family
    std::vector<double> neighbor_est;  // r̃_neighbor (scaled family)
    std::vector<double> total;         // r_TPA
  };
  QueryParts QueryDecomposed(NodeId seed) const;

  /// The precomputed approximate stranger vector (PageRank tail).
  const std::vector<double>& stranger_scores() const { return stranger_; }

  /// Lemma 2 scaling factor ‖r_neighbor‖₁ / ‖r_family‖₁ =
  /// ((1-c)^S − (1-c)^T) / (1 − (1-c)^S).
  double NeighborScale() const;

  /// Logical size of the preprocessed data: one double per node.
  size_t PreprocessedBytes() const {
    return stranger_.size() * sizeof(double);
  }

  const TpaOptions& options() const { return options_; }

  /// Installs (or clears) the fork-join runner used by QueryBatch's dense
  /// tail.  Queries already in flight keep the runner they started with;
  /// call before serving.
  void set_task_runner(la::TaskRunner* runner) {
    options_.task_runner = runner;
  }

  /// The propagation-workspace pool shared by every query against this
  /// preprocessed state: one workspace per *concurrent* query, checked out
  /// per call, warm regardless of which serving thread runs it (exposed so
  /// tests can pin created() to the serving concurrency).
  const WorkspacePool& workspace_pool() const { return *workspaces_; }

 private:
  Tpa(const Graph* graph, TpaOptions options, std::vector<double> stranger)
      : graph_(graph),
        options_(options),
        stranger_(std::move(stranger)),
        workspaces_(std::make_shared<WorkspacePool>()) {}

  const Graph* graph_;  // not owned
  TpaOptions options_;
  std::vector<double> stranger_;
  /// shared_ptr keeps Tpa movable (WorkspacePool owns a mutex).
  std::shared_ptr<WorkspacePool> workspaces_;
};

/// Theoretical L1 error bounds (Lemmas 1, 3; Theorem 2).
double StrangerErrorBound(double restart_probability, int stranger_start);
double NeighborErrorBound(double restart_probability, int family_window,
                          int stranger_start);
double TotalErrorBound(double restart_probability, int family_window);

/// Validates a TpaOptions bundle (c, ε ranges; 1 ≤ S < T).
Status ValidateTpaOptions(const TpaOptions& options);

}  // namespace tpa

#endif  // TPA_CORE_TPA_H_
