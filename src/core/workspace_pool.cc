#include "core/workspace_pool.h"

namespace tpa {

WorkspacePool::Lease WorkspacePool::Acquire() {
  std::unique_ptr<Cpi::Workspace> workspace;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      workspace = std::move(idle_.back());
      idle_.pop_back();
    } else {
      ++created_;
    }
  }
  if (workspace == nullptr) workspace = std::make_unique<Cpi::Workspace>();
  return Lease(this, std::move(workspace));
}

void WorkspacePool::Release(std::unique_ptr<Cpi::Workspace> workspace) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(workspace));
}

size_t WorkspacePool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

size_t WorkspacePool::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

}  // namespace tpa
