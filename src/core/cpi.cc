#include "core/cpi.h"

#include <algorithm>
#include <cmath>

#include "la/vector_ops.h"
#include "util/check.h"

namespace tpa {

Status ValidateFrontierThreshold(double threshold) {
  if (!(threshold >= 0.0 && threshold <= 1.0)) {
    return InvalidArgumentError(
        "frontier_density_threshold must be in [0, 1]");
  }
  return OkStatus();
}

namespace {

Status ValidateOptions(const CpiOptions& options) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(options.restart_probability,
                                            options.tolerance));
  TPA_RETURN_IF_ERROR(
      ValidateFrontierThreshold(options.frontier_density_threshold));
  if (options.start_iteration < 0) {
    return InvalidArgumentError("start_iteration must be non-negative");
  }
  if (options.terminal_iteration < options.start_iteration) {
    return InvalidArgumentError(
        "terminal_iteration must be at least start_iteration");
  }
  return OkStatus();
}

void Propagate(const Graph& graph, bool use_pull, double decay,
               const std::vector<double>& x, std::vector<double>& y) {
  if (use_pull) {
    graph.MultiplyTransposePull(x, y);
  } else {
    graph.MultiplyTranspose(x, y);
  }
  la::Scale(decay, y);
}

/// Scalar post-propagate phase of a sparse-head iteration, restricted to the
/// frontier (a sorted superset of x's support): x ·= decay, scores += x,
/// returns ‖x‖₁.  Entries off the frontier are exactly +0.0, and adding or
/// scaling +0.0 is a bitwise no-op, so this reproduces the dense
/// Scale → Axpy → NormL1 sequence exactly.  `scores` may be null (window
/// outside [s_iter, t_iter]).
double ScaleAccumulateAndNormFrontier(double decay,
                                      std::span<const NodeId> frontier,
                                      std::vector<double>& x, double* scores) {
  double norm = 0.0;
  for (NodeId i : frontier) {
    const double v = x[i] * decay;
    x[i] = v;
    if (scores != nullptr) scores[i] += v;
    norm += std::abs(v);
  }
  return norm;
}

/// The blocked equivalent of one scalar post-propagate phase — Scale(decay),
/// Axpy into the accumulator, NormL1 — fused into a single streaming pass
/// over the block (three separate n×B sweeps would triple the dominant
/// dense traffic of a batched iteration).  Per element the arithmetic and
/// its order match the scalar phases exactly: v = x·decay, acc += v (for
/// vectors still accumulating), norm_b += |v| over rows in ascending
/// order.  A frozen vector keeps propagating through the shared SpMM
/// (cheaper than compacting the block) but stops accumulating, exactly
/// like its scalar loop breaking.
std::vector<double> ScaleAccumulateAndNorms(double decay, bool accumulate,
                                            const std::vector<char>& active,
                                            size_t remaining,
                                            la::DenseBlock& x,
                                            la::DenseBlock& acc) {
  const size_t num_vectors = x.num_vectors();
  std::vector<double> norms(num_vectors, 0.0);
  const bool all_active = remaining == num_vectors;
  double* norms_data = norms.data();
  for (size_t r = 0; r < x.rows(); ++r) {
    double* __restrict xr = x.RowPtr(r);
    double* __restrict ar = acc.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) {
      const double v = xr[b] * decay;
      xr[b] = v;
      if (accumulate && (all_active || active[b])) ar[b] += v;
      norms_data[b] += std::abs(v);
    }
  }
  return norms;
}

/// Frontier-restricted variant of ScaleAccumulateAndNorms: the same fused
/// pass over only the union-frontier rows (sorted ascending), which is a
/// superset of every vector's support.  Rows off the frontier hold exact
/// +0.0 in all B lanes, so skipping them is a bitwise no-op against the
/// full sweep.  With decay == 1.0 this doubles as the x(0) accumulation
/// pass (v = x·1.0 is bitwise x for the NaN/Inf/−0.0-free inputs the
/// kernels already assume).
std::vector<double> ScaleAccumulateAndNormsFrontier(
    double decay, bool accumulate, const std::vector<char>& active,
    size_t remaining, std::span<const NodeId> frontier, la::DenseBlock& x,
    la::DenseBlock& acc) {
  const size_t num_vectors = x.num_vectors();
  std::vector<double> norms(num_vectors, 0.0);
  const bool all_active = remaining == num_vectors;
  double* norms_data = norms.data();
  for (NodeId r : frontier) {
    double* __restrict xr = x.RowPtr(r);
    double* __restrict ar = acc.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) {
      const double v = xr[b] * decay;
      xr[b] = v;
      if (accumulate && (all_active || active[b])) ar[b] += v;
      norms_data[b] += std::abs(v);
    }
  }
  return norms;
}

/// Marks vectors whose interim norm dropped below tolerance as frozen;
/// returns how many remain active.
size_t FreezeConverged(const std::vector<double>& norms, double tolerance,
                       std::vector<char>& active, size_t remaining) {
  for (size_t b = 0; b < norms.size(); ++b) {
    if (active[b] && norms[b] < tolerance) {
      active[b] = 0;
      --remaining;
    }
  }
  return remaining;
}

/// Whether the adaptive head applies at all: the frontier kernels are
/// scatter-shaped, so the pull flavor always runs dense.
bool SparseHeadEnabled(const CpiOptions& options) {
  return !options.use_pull && options.frontier_density_threshold > 0.0;
}

/// Scans x for its support and leaves it, sorted, in `frontier`.  Bails out
/// (returns false) once the support exceeds the density limit — the run
/// starts dense and no frontier is needed.
bool ScanInitialFrontier(const std::vector<double>& x, double limit,
                         std::vector<NodeId>& frontier) {
  frontier.clear();
  for (NodeId i = 0; i < x.size(); ++i) {
    if (x[i] == 0.0) continue;
    frontier.push_back(i);
    if (static_cast<double>(frontier.size()) > limit) return false;
  }
  return true;
}

/// Shared scalar CPI loop.  Preconditions: options validated; ws.x holds
/// x(0) = c·q; when frontier_ready, ws.frontier holds x(0)'s support sorted
/// ascending (callers with explicit seed lists skip the O(n) support scan).
Cpi::Result RunScalarLoop(const Graph& graph, const CpiOptions& options,
                          Cpi::Workspace& ws, bool frontier_ready) {
  const NodeId n = graph.num_nodes();
  const double decay = 1.0 - options.restart_probability;
  const double limit =
      options.frontier_density_threshold * static_cast<double>(n);

  Cpi::Result result;
  result.scores.assign(n, 0.0);

  bool sparse = SparseHeadEnabled(options);
  if (sparse && !frontier_ready) {
    sparse = ScanInitialFrontier(ws.x, limit, ws.frontier);
  }
  if (sparse && static_cast<double>(ws.frontier.size()) > limit) {
    sparse = false;
  }
  ws.next.assign(n, 0.0);
  ws.next_frontier.clear();  // the recycled buffer starts fully zeroed

  // x(0) accumulation + interim norm.
  if (sparse) {
    result.last_interim_norm = ScaleAccumulateAndNormFrontier(
        1.0, ws.frontier, ws.x,
        options.start_iteration == 0 ? result.scores.data() : nullptr);
  } else {
    if (options.start_iteration == 0) la::Axpy(1.0, ws.x, result.scores);
    result.last_interim_norm = la::NormL1(ws.x);
  }
  if (result.last_interim_norm < options.tolerance) {
    result.converged = true;
    return result;
  }

  for (int i = 1; i <= options.terminal_iteration; ++i) {
    if (sparse) {
      // Re-zero the stale support of the recycled buffer (the interim
      // vector from two iterations ago), then scatter from the frontier.
      for (NodeId j : ws.next_frontier) ws.next[j] = 0.0;
      const bool stayed = graph.Transition().SpMvTransposeFrontier(
          ws.x, ws.frontier, options.frontier_density_threshold, ws.next,
          ws.next_frontier, ws.scratch);
      ws.x.swap(ws.next);
      result.last_iteration = i;
      if (stayed) {
        ws.frontier.swap(ws.next_frontier);
        result.last_interim_norm = ScaleAccumulateAndNormFrontier(
            decay, ws.frontier, ws.x,
            i >= options.start_iteration ? result.scores.data() : nullptr);
      } else {
        // The kernel fell through to the dense scatter; finish this
        // iteration with the dense post-passes and stay dense.
        sparse = false;
        la::Scale(decay, ws.x);
        if (i >= options.start_iteration) la::Axpy(1.0, ws.x, result.scores);
        result.last_interim_norm = la::NormL1(ws.x);
      }
    } else {
      Propagate(graph, options.use_pull, decay, ws.x, ws.next);
      ws.x.swap(ws.next);
      result.last_iteration = i;
      if (i >= options.start_iteration) la::Axpy(1.0, ws.x, result.scores);
      result.last_interim_norm = la::NormL1(ws.x);
    }
    if (result.last_interim_norm < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace

Status ValidateCpiParameters(double restart_probability, double tolerance) {
  if (!(restart_probability > 0.0 && restart_probability < 1.0)) {
    return InvalidArgumentError("restart probability must be in (0,1)");
  }
  if (!(tolerance > 0.0)) {
    return InvalidArgumentError("tolerance must be positive");
  }
  return OkStatus();
}

int CpiIterationCount(double restart_probability, double tolerance) {
  const double c = restart_probability;
  return static_cast<int>(
      std::ceil(std::log(tolerance / c) / std::log(1.0 - c)));
}

StatusOr<Cpi::Result> Cpi::Run(const Graph& graph,
                               const std::vector<NodeId>& seeds,
                               const CpiOptions& options,
                               Workspace* workspace) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (seeds.empty()) return InvalidArgumentError("seed set must be non-empty");
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return OutOfRangeError("seed node out of range");
    }
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;

  // x(0) = c·q built directly in the workspace: q[s] += share per seed,
  // then the support scaled by c — bitwise-identical to materializing q and
  // Scale(c, ·) over all n (off-support entries are exact +0.0 and 0·c is a
  // bitwise no-op), without the extra n-length vector.
  ws.x.assign(graph.num_nodes(), 0.0);
  const double share = 1.0 / static_cast<double>(seeds.size());
  for (NodeId s : seeds) ws.x[s] += share;

  ws.frontier.assign(seeds.begin(), seeds.end());
  std::sort(ws.frontier.begin(), ws.frontier.end());
  ws.frontier.erase(std::unique(ws.frontier.begin(), ws.frontier.end()),
                    ws.frontier.end());
  const double c = options.restart_probability;
  for (NodeId i : ws.frontier) ws.x[i] *= c;

  return RunScalarLoop(graph, options, ws, /*frontier_ready=*/true);
}

StatusOr<Cpi::Result> Cpi::RunWithSeedVector(const Graph& graph,
                                             const std::vector<double>& q,
                                             const CpiOptions& options,
                                             Workspace* workspace) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (q.size() != graph.num_nodes()) {
    return InvalidArgumentError("seed vector size must equal node count");
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  ws.x.assign(q.begin(), q.end());
  la::Scale(options.restart_probability, ws.x);
  return RunScalarLoop(graph, options, ws, /*frontier_ready=*/false);
}

StatusOr<la::DenseBlock> Cpi::RunBatch(const Graph& graph,
                                       std::span<const NodeId> seeds,
                                       const CpiOptions& options,
                                       Workspace* workspace) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (seeds.empty()) {
    return InvalidArgumentError("seed batch must be non-empty");
  }
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return OutOfRangeError("seed node out of range");
    }
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;

  const NodeId n = graph.num_nodes();
  const double c = options.restart_probability;
  const double decay = 1.0 - c;
  const size_t num_vectors = seeds.size();
  const double limit =
      options.frontier_density_threshold * static_cast<double>(n);

  // x(0) = c·e_s per vector; 1.0·c == c bitwise, matching the scalar path's
  // q[s] = 1.0 followed by Scale(c, ·).
  la::DenseBlock& x = ws.block_x;
  la::DenseBlock& next = ws.block_next;
  x.Resize(n, num_vectors);
  x.SetZero();
  for (size_t b = 0; b < num_vectors; ++b) x.At(seeds[b], b) = c;

  la::DenseBlock acc(n, num_vectors);
  std::vector<char> active(num_vectors, 1);
  size_t remaining = num_vectors;

  // The union frontier: sorted unique seeds, a superset of every vector's
  // support.
  bool sparse = SparseHeadEnabled(options);
  if (sparse) {
    ws.frontier.assign(seeds.begin(), seeds.end());
    std::sort(ws.frontier.begin(), ws.frontier.end());
    ws.frontier.erase(std::unique(ws.frontier.begin(), ws.frontier.end()),
                      ws.frontier.end());
    if (static_cast<double>(ws.frontier.size()) > limit) sparse = false;
  }
  next.Resize(n, num_vectors);
  if (sparse) next.SetZero();  // the recycled buffer starts fully zeroed
  ws.next_frontier.clear();

  if (sparse) {
    remaining = FreezeConverged(
        ScaleAccumulateAndNormsFrontier(1.0, options.start_iteration == 0,
                                        active, remaining, ws.frontier, x,
                                        acc),
        options.tolerance, active, remaining);
  } else {
    if (options.start_iteration == 0) la::BlockAxpy(1.0, x, acc);
    remaining = FreezeConverged(la::BlockColumnNormsL1(x), options.tolerance,
                                active, remaining);
  }

  la::TaskRunner* runner = options.task_runner;
  for (int i = 1; i <= options.terminal_iteration && remaining > 0; ++i) {
    if (sparse && static_cast<double>(ws.frontier.size()) > limit) {
      // Cross to the dense tail here (rather than through the kernel's own
      // fallthrough) so the dense sweep can take the partition-parallel
      // path below; both orders produce bitwise-identical blocks.
      sparse = false;
    }
    if (options.use_pull) {
      graph.MultiplyTransposePullBlock(x, next);
    } else if (sparse) {
      // Re-zero the stale support of the recycled buffer (the interim
      // block from two iterations ago), then scatter from the frontier.
      for (NodeId j : ws.next_frontier) {
        double* row = next.RowPtr(j);
        std::fill(row, row + num_vectors, 0.0);
      }
      const bool stayed = graph.Transition().SpMmTransposeFrontier(
          x, ws.frontier, options.frontier_density_threshold, next,
          ws.next_frontier, ws.scratch);
      TPA_DCHECK(stayed);  // the pre-check above mirrors the kernel's
      (void)stayed;
    } else if (runner != nullptr) {
      graph.MultiplyTransposeBlockParallel(x, next, *runner);
    } else {
      graph.MultiplyTransposeBlock(x, next);
    }
    x.swap(next);
    std::vector<double> norms;
    if (sparse) {
      ws.frontier.swap(ws.next_frontier);
      norms = ScaleAccumulateAndNormsFrontier(decay,
                                              i >= options.start_iteration,
                                              active, remaining, ws.frontier,
                                              x, acc);
    } else {
      norms = ScaleAccumulateAndNorms(decay, i >= options.start_iteration,
                                      active, remaining, x, acc);
    }
    remaining = FreezeConverged(norms, options.tolerance, active, remaining);
  }
  return acc;
}

StatusOr<std::vector<std::vector<double>>> Cpi::RunWindowed(
    const Graph& graph, const std::vector<double>& q,
    const std::vector<int>& breakpoints, const CpiOptions& options,
    Workspace* workspace) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(options.restart_probability,
                                            options.tolerance));
  TPA_RETURN_IF_ERROR(
      ValidateFrontierThreshold(options.frontier_density_threshold));
  if (q.size() != graph.num_nodes()) {
    return InvalidArgumentError("seed vector size must equal node count");
  }
  if (breakpoints.empty() || breakpoints.front() != 0) {
    return InvalidArgumentError("breakpoints must start at 0");
  }
  for (size_t w = 1; w < breakpoints.size(); ++w) {
    if (breakpoints[w] <= breakpoints[w - 1]) {
      return InvalidArgumentError("breakpoints must be strictly increasing");
    }
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;

  const NodeId n = graph.num_nodes();
  const double c = options.restart_probability;
  const double decay = 1.0 - c;
  const double limit =
      options.frontier_density_threshold * static_cast<double>(n);
  const size_t num_windows = breakpoints.size();

  std::vector<std::vector<double>> windows(
      num_windows, std::vector<double>(n, 0.0));
  auto window_of = [&breakpoints, num_windows](int i) {
    size_t w = num_windows - 1;
    while (w > 0 && i < breakpoints[w]) --w;
    return w;
  };

  ws.x.assign(q.begin(), q.end());
  la::Scale(c, ws.x);
  bool sparse = SparseHeadEnabled(options) &&
                ScanInitialFrontier(ws.x, limit, ws.frontier);
  ws.next.assign(n, 0.0);
  ws.next_frontier.clear();

  double norm;
  if (sparse) {
    norm = ScaleAccumulateAndNormFrontier(1.0, ws.frontier, ws.x,
                                          windows[window_of(0)].data());
  } else {
    la::Axpy(1.0, ws.x, windows[window_of(0)]);
    norm = la::NormL1(ws.x);
  }

  for (int i = 1;; ++i) {
    if (norm < options.tolerance) break;
    if (sparse) {
      for (NodeId j : ws.next_frontier) ws.next[j] = 0.0;
      const bool stayed = graph.Transition().SpMvTransposeFrontier(
          ws.x, ws.frontier, options.frontier_density_threshold, ws.next,
          ws.next_frontier, ws.scratch);
      ws.x.swap(ws.next);
      if (stayed) {
        ws.frontier.swap(ws.next_frontier);
        norm = ScaleAccumulateAndNormFrontier(decay, ws.frontier, ws.x,
                                              windows[window_of(i)].data());
        continue;
      }
      sparse = false;
      la::Scale(decay, ws.x);
    } else {
      Propagate(graph, options.use_pull, decay, ws.x, ws.next);
      ws.x.swap(ws.next);
    }
    la::Axpy(1.0, ws.x, windows[window_of(i)]);
    norm = la::NormL1(ws.x);
  }
  return windows;
}

StatusOr<std::vector<double>> Cpi::PageRank(const Graph& graph,
                                            const CpiOptions& options) {
  std::vector<double> q(graph.num_nodes(),
                        1.0 / static_cast<double>(graph.num_nodes()));
  TPA_ASSIGN_OR_RETURN(Result result, RunWithSeedVector(graph, q, options));
  return std::move(result.scores);
}

StatusOr<std::vector<double>> Cpi::ExactRwr(const Graph& graph, NodeId seed,
                                            const CpiOptions& options) {
  TPA_ASSIGN_OR_RETURN(Result result, Run(graph, {seed}, options));
  return std::move(result.scores);
}

}  // namespace tpa
