#include "core/cpi.h"

#include <cmath>

#include "la/vector_ops.h"
#include "util/check.h"

namespace tpa {

namespace {

Status ValidateOptions(const CpiOptions& options) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(options.restart_probability,
                                            options.tolerance));
  if (options.start_iteration < 0) {
    return InvalidArgumentError("start_iteration must be non-negative");
  }
  if (options.terminal_iteration < options.start_iteration) {
    return InvalidArgumentError(
        "terminal_iteration must be at least start_iteration");
  }
  return OkStatus();
}

void Propagate(const Graph& graph, bool use_pull, double decay,
               const std::vector<double>& x, std::vector<double>& y) {
  if (use_pull) {
    graph.MultiplyTransposePull(x, y);
  } else {
    graph.MultiplyTranspose(x, y);
  }
  la::Scale(decay, y);
}

/// The blocked equivalent of one scalar post-propagate phase — Scale(decay),
/// Axpy into the accumulator, NormL1 — fused into a single streaming pass
/// over the block (three separate n×B sweeps would triple the dominant
/// dense traffic of a batched iteration).  Per element the arithmetic and
/// its order match the scalar phases exactly: v = x·decay, acc += v (for
/// vectors still accumulating), norm_b += |v| over rows in ascending
/// order.  A frozen vector keeps propagating through the shared SpMM
/// (cheaper than compacting the block) but stops accumulating, exactly
/// like its scalar loop breaking.
std::vector<double> ScaleAccumulateAndNorms(double decay, bool accumulate,
                                            const std::vector<char>& active,
                                            size_t remaining,
                                            la::DenseBlock& x,
                                            la::DenseBlock& acc) {
  const size_t num_vectors = x.num_vectors();
  std::vector<double> norms(num_vectors, 0.0);
  const bool all_active = remaining == num_vectors;
  double* norms_data = norms.data();
  for (size_t r = 0; r < x.rows(); ++r) {
    double* __restrict xr = x.RowPtr(r);
    double* __restrict ar = acc.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) {
      const double v = xr[b] * decay;
      xr[b] = v;
      if (accumulate && (all_active || active[b])) ar[b] += v;
      norms_data[b] += std::abs(v);
    }
  }
  return norms;
}

/// Marks vectors whose interim norm dropped below tolerance as frozen;
/// returns how many remain active.
size_t FreezeConverged(const std::vector<double>& norms, double tolerance,
                       std::vector<char>& active, size_t remaining) {
  for (size_t b = 0; b < norms.size(); ++b) {
    if (active[b] && norms[b] < tolerance) {
      active[b] = 0;
      --remaining;
    }
  }
  return remaining;
}

}  // namespace

Status ValidateCpiParameters(double restart_probability, double tolerance) {
  if (!(restart_probability > 0.0 && restart_probability < 1.0)) {
    return InvalidArgumentError("restart probability must be in (0,1)");
  }
  if (!(tolerance > 0.0)) {
    return InvalidArgumentError("tolerance must be positive");
  }
  return OkStatus();
}

int CpiIterationCount(double restart_probability, double tolerance) {
  const double c = restart_probability;
  return static_cast<int>(
      std::ceil(std::log(tolerance / c) / std::log(1.0 - c)));
}

StatusOr<Cpi::Result> Cpi::Run(const Graph& graph,
                               const std::vector<NodeId>& seeds,
                               const CpiOptions& options) {
  if (seeds.empty()) return InvalidArgumentError("seed set must be non-empty");
  std::vector<double> q(graph.num_nodes(), 0.0);
  const double share = 1.0 / static_cast<double>(seeds.size());
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return OutOfRangeError("seed node out of range");
    }
    q[s] += share;
  }
  return RunWithSeedVector(graph, q, options);
}

StatusOr<Cpi::Result> Cpi::RunWithSeedVector(const Graph& graph,
                                             const std::vector<double>& q,
                                             const CpiOptions& options) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (q.size() != graph.num_nodes()) {
    return InvalidArgumentError("seed vector size must equal node count");
  }
  const double c = options.restart_probability;
  const double decay = 1.0 - c;

  Result result;
  result.scores.assign(graph.num_nodes(), 0.0);

  // x(0) = c·q.
  std::vector<double> x = q;
  la::Scale(c, x);
  std::vector<double> next(graph.num_nodes());

  if (options.start_iteration == 0) la::Axpy(1.0, x, result.scores);
  result.last_interim_norm = la::NormL1(x);
  if (result.last_interim_norm < options.tolerance) {
    result.converged = true;
    return result;
  }

  for (int i = 1; i <= options.terminal_iteration; ++i) {
    Propagate(graph, options.use_pull, decay, x, next);
    x.swap(next);
    result.last_iteration = i;
    if (i >= options.start_iteration) la::Axpy(1.0, x, result.scores);
    result.last_interim_norm = la::NormL1(x);
    if (result.last_interim_norm < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

StatusOr<la::DenseBlock> Cpi::RunBatch(const Graph& graph,
                                       std::span<const NodeId> seeds,
                                       const CpiOptions& options) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (seeds.empty()) {
    return InvalidArgumentError("seed batch must be non-empty");
  }
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return OutOfRangeError("seed node out of range");
    }
  }
  const double c = options.restart_probability;
  const double decay = 1.0 - c;
  const size_t num_vectors = seeds.size();

  // x(0) = c·e_s per vector; 1.0·c == c bitwise, matching the scalar path's
  // q[s] = 1.0 followed by Scale(c, ·).
  la::DenseBlock x(graph.num_nodes(), num_vectors);
  for (size_t b = 0; b < num_vectors; ++b) x.At(seeds[b], b) = c;

  la::DenseBlock acc(graph.num_nodes(), num_vectors);
  std::vector<char> active(num_vectors, 1);
  size_t remaining = num_vectors;

  if (options.start_iteration == 0) la::BlockAxpy(1.0, x, acc);
  remaining = FreezeConverged(la::BlockColumnNormsL1(x), options.tolerance,
                              active, remaining);

  la::DenseBlock next;
  for (int i = 1; i <= options.terminal_iteration && remaining > 0; ++i) {
    if (options.use_pull) {
      graph.MultiplyTransposePullBlock(x, next);
    } else {
      graph.MultiplyTransposeBlock(x, next);
    }
    x.swap(next);
    const std::vector<double> norms = ScaleAccumulateAndNorms(
        decay, i >= options.start_iteration, active, remaining, x, acc);
    remaining = FreezeConverged(norms, options.tolerance, active, remaining);
  }
  return acc;
}

StatusOr<std::vector<std::vector<double>>> Cpi::RunWindowed(
    const Graph& graph, const std::vector<double>& q,
    const std::vector<int>& breakpoints, const CpiOptions& options) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(options.restart_probability,
                                            options.tolerance));
  if (q.size() != graph.num_nodes()) {
    return InvalidArgumentError("seed vector size must equal node count");
  }
  if (breakpoints.empty() || breakpoints.front() != 0) {
    return InvalidArgumentError("breakpoints must start at 0");
  }
  for (size_t w = 1; w < breakpoints.size(); ++w) {
    if (breakpoints[w] <= breakpoints[w - 1]) {
      return InvalidArgumentError("breakpoints must be strictly increasing");
    }
  }
  const double c = options.restart_probability;
  const double decay = 1.0 - c;
  const size_t num_windows = breakpoints.size();

  std::vector<std::vector<double>> windows(
      num_windows, std::vector<double>(graph.num_nodes(), 0.0));
  auto window_of = [&breakpoints, num_windows](int i) {
    size_t w = num_windows - 1;
    while (w > 0 && i < breakpoints[w]) --w;
    return w;
  };

  std::vector<double> x = q;
  la::Scale(c, x);
  std::vector<double> next(graph.num_nodes());
  la::Axpy(1.0, x, windows[window_of(0)]);

  for (int i = 1;; ++i) {
    if (la::NormL1(x) < options.tolerance) break;
    Propagate(graph, options.use_pull, decay, x, next);
    x.swap(next);
    la::Axpy(1.0, x, windows[window_of(i)]);
  }
  return windows;
}

StatusOr<std::vector<double>> Cpi::PageRank(const Graph& graph,
                                            const CpiOptions& options) {
  std::vector<double> q(graph.num_nodes(),
                        1.0 / static_cast<double>(graph.num_nodes()));
  TPA_ASSIGN_OR_RETURN(Result result, RunWithSeedVector(graph, q, options));
  return std::move(result.scores);
}

StatusOr<std::vector<double>> Cpi::ExactRwr(const Graph& graph, NodeId seed,
                                            const CpiOptions& options) {
  TPA_ASSIGN_OR_RETURN(Result result, Run(graph, {seed}, options));
  return std::move(result.scores);
}

}  // namespace tpa
