#include "core/cpi.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "la/vector_ops.h"
#include "util/check.h"

namespace tpa {

Status ValidateFrontierThreshold(double threshold) {
  if (!(threshold >= 0.0 && threshold <= 1.0)) {
    return InvalidArgumentError(
        "frontier_density_threshold must be in [0, 1]");
  }
  return OkStatus();
}

namespace {

Status ValidateOptions(const CpiOptions& options) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(options.restart_probability,
                                            options.tolerance));
  TPA_RETURN_IF_ERROR(
      ValidateFrontierThreshold(options.frontier_density_threshold));
  if (options.start_iteration < 0) {
    return InvalidArgumentError("start_iteration must be non-negative");
  }
  if (options.terminal_iteration < options.start_iteration) {
    return InvalidArgumentError(
        "terminal_iteration must be at least start_iteration");
  }
  return OkStatus();
}

/// Scalar and blocked interim buffers of the workspace at tier V — the
/// other tier's buffers are never touched by a V-run.
template <typename V>
std::vector<V>& WsX(Cpi::Workspace& ws) {
  if constexpr (std::is_same_v<V, double>) {
    return ws.x;
  } else {
    return ws.x_f;
  }
}
template <typename V>
std::vector<V>& WsNext(Cpi::Workspace& ws) {
  if constexpr (std::is_same_v<V, double>) {
    return ws.next;
  } else {
    return ws.next_f;
  }
}
template <typename V>
la::DenseBlockT<V>& WsBlockX(Cpi::Workspace& ws) {
  if constexpr (std::is_same_v<V, double>) {
    return ws.block_x;
  } else {
    return ws.block_x_f;
  }
}
template <typename V>
la::DenseBlockT<V>& WsBlockNext(Cpi::Workspace& ws) {
  if constexpr (std::is_same_v<V, double>) {
    return ws.block_next;
  } else {
    return ws.block_next_f;
  }
}

template <typename V>
void Propagate(const Graph& graph, bool use_pull, double decay,
               const std::vector<V>& x, std::vector<V>& y) {
  if (use_pull) {
    graph.MultiplyTransposePullT<V>(x, y);
  } else {
    graph.MultiplyTransposeT<V>(x, y);
  }
  la::Scale(decay, y);
}

/// Scalar post-propagate phase of a sparse-head iteration, restricted to the
/// frontier (a sorted superset of x's support): x ·= decay, scores += x,
/// returns ‖x‖₁.  Entries off the frontier are exactly +0.0, and adding or
/// scaling +0.0 is a bitwise no-op, so this reproduces the dense
/// Scale → Axpy → NormL1 sequence exactly — at either tier: the product is
/// taken in fp64, rounded once to V on store, and the accumulation and norm
/// read the stored (rounded) value just like the dense passes would.
/// `scores` may be null (window outside [s_iter, t_iter]).
template <typename V>
double ScaleAccumulateAndNormFrontier(double decay,
                                      std::span<const NodeId> frontier,
                                      std::vector<V>& x, V* scores) {
  double norm = 0.0;
  for (NodeId i : frontier) {
    const V v = static_cast<V>(static_cast<double>(x[i]) * decay);
    x[i] = v;
    if (scores != nullptr) scores[i] += static_cast<double>(v);
    norm += std::abs(static_cast<double>(v));
  }
  return norm;
}

/// The blocked equivalent of one scalar post-propagate phase — Scale(decay),
/// Axpy into the accumulator, NormL1 — fused into a single streaming pass
/// over the block (three separate n×B sweeps would triple the dominant
/// dense traffic of a batched iteration).  Per element the arithmetic and
/// its order match the scalar phases exactly: v = x·decay, acc += v (for
/// vectors still accumulating), norm_b += |v| over rows in ascending
/// order.  A frozen vector keeps propagating through the shared SpMM
/// (cheaper than compacting the block) but stops accumulating, exactly
/// like its scalar loop breaking.
template <typename V>
std::vector<double> ScaleAccumulateAndNorms(double decay, bool accumulate,
                                            const std::vector<char>& active,
                                            size_t remaining,
                                            la::DenseBlockT<V>& x,
                                            la::DenseBlockT<V>& acc) {
  const size_t num_vectors = x.num_vectors();
  std::vector<double> norms(num_vectors, 0.0);
  const bool all_active = remaining == num_vectors;
  double* norms_data = norms.data();
  for (size_t r = 0; r < x.rows(); ++r) {
    V* __restrict xr = x.RowPtr(r);
    V* __restrict ar = acc.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) {
      const V v = static_cast<V>(static_cast<double>(xr[b]) * decay);
      xr[b] = v;
      if (accumulate && (all_active || active[b])) {
        ar[b] += static_cast<double>(v);
      }
      norms_data[b] += std::abs(static_cast<double>(v));
    }
  }
  return norms;
}

/// Frontier-restricted variant of ScaleAccumulateAndNorms: the same fused
/// pass over only the union-frontier rows (sorted ascending), which is a
/// superset of every vector's support.  Rows off the frontier hold exact
/// +0.0 in all B lanes, so skipping them is a bitwise no-op against the
/// full sweep.  With decay == 1.0 this doubles as the x(0) accumulation
/// pass (v = x·1.0 is bitwise x for the NaN/Inf/−0.0-free inputs the
/// kernels already assume).
template <typename V>
std::vector<double> ScaleAccumulateAndNormsFrontier(
    double decay, bool accumulate, const std::vector<char>& active,
    size_t remaining, std::span<const NodeId> frontier, la::DenseBlockT<V>& x,
    la::DenseBlockT<V>& acc) {
  const size_t num_vectors = x.num_vectors();
  std::vector<double> norms(num_vectors, 0.0);
  const bool all_active = remaining == num_vectors;
  double* norms_data = norms.data();
  for (NodeId r : frontier) {
    V* __restrict xr = x.RowPtr(r);
    V* __restrict ar = acc.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) {
      const V v = static_cast<V>(static_cast<double>(xr[b]) * decay);
      xr[b] = v;
      if (accumulate && (all_active || active[b])) {
        ar[b] += static_cast<double>(v);
      }
      norms_data[b] += std::abs(static_cast<double>(v));
    }
  }
  return norms;
}

/// Marks vectors whose interim norm dropped below tolerance as frozen;
/// returns how many remain active.
size_t FreezeConverged(const std::vector<double>& norms, double tolerance,
                       std::vector<char>& active, size_t remaining) {
  for (size_t b = 0; b < norms.size(); ++b) {
    if (active[b] && norms[b] < tolerance) {
      active[b] = 0;
      --remaining;
    }
  }
  return remaining;
}

/// Whether the adaptive head applies at all: the frontier kernels are
/// scatter-shaped, so the pull flavor always runs dense.
bool SparseHeadEnabled(const CpiOptions& options) {
  return !options.use_pull && options.frontier_density_threshold > 0.0;
}

/// Scans x for its support and leaves it, sorted, in `frontier`.  Bails out
/// (returns false) once the support exceeds the density limit — the run
/// starts dense and no frontier is needed.
template <typename V>
bool ScanInitialFrontier(const std::vector<V>& x, double limit,
                         std::vector<NodeId>& frontier) {
  frontier.clear();
  for (NodeId i = 0; i < x.size(); ++i) {
    if (x[i] == V{0}) continue;
    frontier.push_back(i);
    if (static_cast<double>(frontier.size()) > limit) return false;
  }
  return true;
}

/// Shared scalar CPI loop.  Preconditions: options validated; the tier-V
/// interim buffer holds x(0) = c·q; when frontier_ready, ws.frontier holds
/// x(0)'s support sorted ascending (callers with explicit seed lists skip
/// the O(n) support scan).
template <typename V>
Cpi::ResultT<V> RunScalarLoop(const Graph& graph, const CpiOptions& options,
                              Cpi::Workspace& ws, bool frontier_ready) {
  const NodeId n = graph.num_nodes();
  const double decay = 1.0 - options.restart_probability;
  const double limit =
      options.frontier_density_threshold * static_cast<double>(n);
  std::vector<V>& x = WsX<V>(ws);
  std::vector<V>& next = WsNext<V>(ws);

  Cpi::ResultT<V> result;
  result.scores.assign(n, V{0});

  bool sparse = SparseHeadEnabled(options);
  if (sparse && !frontier_ready) {
    sparse = ScanInitialFrontier(x, limit, ws.frontier);
  }
  if (sparse && static_cast<double>(ws.frontier.size()) > limit) {
    sparse = false;
  }
  next.assign(n, V{0});
  ws.next_frontier.clear();  // the recycled buffer starts fully zeroed

  // x(0) accumulation + interim norm.
  if (sparse) {
    result.last_interim_norm = ScaleAccumulateAndNormFrontier<V>(
        1.0, ws.frontier, x,
        options.start_iteration == 0 ? result.scores.data() : nullptr);
  } else {
    if (options.start_iteration == 0) la::Axpy(1.0, x, result.scores);
    result.last_interim_norm = la::NormL1(x);
  }
  if (result.last_interim_norm < options.tolerance) {
    result.converged = true;
    return result;
  }

  for (int i = 1; i <= options.terminal_iteration; ++i) {
    if (sparse) {
      // Re-zero the stale support of the recycled buffer (the interim
      // vector from two iterations ago), then scatter from the frontier.
      for (NodeId j : ws.next_frontier) next[j] = V{0};
      const bool stayed = graph.TransitionT<V>().SpMvTransposeFrontier(
          x, ws.frontier, options.frontier_density_threshold, next,
          ws.next_frontier, ws.scratch);
      x.swap(next);
      result.last_iteration = i;
      if (stayed) {
        ws.frontier.swap(ws.next_frontier);
        result.last_interim_norm = ScaleAccumulateAndNormFrontier<V>(
            decay, ws.frontier, x,
            i >= options.start_iteration ? result.scores.data() : nullptr);
      } else {
        // The kernel fell through to the dense scatter; finish this
        // iteration with the dense post-passes and stay dense.
        sparse = false;
        la::Scale(decay, x);
        if (i >= options.start_iteration) la::Axpy(1.0, x, result.scores);
        result.last_interim_norm = la::NormL1(x);
      }
    } else {
      Propagate(graph, options.use_pull, decay, x, next);
      x.swap(next);
      result.last_iteration = i;
      if (i >= options.start_iteration) la::Axpy(1.0, x, result.scores);
      result.last_interim_norm = la::NormL1(x);
    }
    if (result.last_interim_norm < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace

Status ValidateCpiParameters(double restart_probability, double tolerance) {
  if (!(restart_probability > 0.0 && restart_probability < 1.0)) {
    return InvalidArgumentError("restart probability must be in (0,1)");
  }
  if (!(tolerance > 0.0)) {
    return InvalidArgumentError("tolerance must be positive");
  }
  return OkStatus();
}

int CpiIterationCount(double restart_probability, double tolerance) {
  const double c = restart_probability;
  return static_cast<int>(
      std::ceil(std::log(tolerance / c) / std::log(1.0 - c)));
}

template <typename V>
StatusOr<Cpi::ResultT<V>> Cpi::RunT(const Graph& graph,
                                    const std::vector<NodeId>& seeds,
                                    const CpiOptions& options,
                                    Workspace* workspace) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (seeds.empty()) return InvalidArgumentError("seed set must be non-empty");
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return OutOfRangeError("seed node out of range");
    }
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  std::vector<V>& x = WsX<V>(ws);

  // x(0) = c·q built directly in the workspace: q[s] += share per seed,
  // then the support scaled by c — bitwise-identical to materializing q and
  // Scale(c, ·) over all n (off-support entries are exact +0.0 and 0·c is a
  // bitwise no-op), without the extra n-length vector.
  x.assign(graph.num_nodes(), V{0});
  const double share = 1.0 / static_cast<double>(seeds.size());
  for (NodeId s : seeds) x[s] += share;

  ws.frontier.assign(seeds.begin(), seeds.end());
  std::sort(ws.frontier.begin(), ws.frontier.end());
  ws.frontier.erase(std::unique(ws.frontier.begin(), ws.frontier.end()),
                    ws.frontier.end());
  const double c = options.restart_probability;
  for (NodeId i : ws.frontier) x[i] *= c;

  return RunScalarLoop<V>(graph, options, ws, /*frontier_ready=*/true);
}

template <typename V>
StatusOr<Cpi::ResultT<V>> Cpi::RunWithSeedVectorT(const Graph& graph,
                                                  const std::vector<V>& q,
                                                  const CpiOptions& options,
                                                  Workspace* workspace) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (q.size() != graph.num_nodes()) {
    return InvalidArgumentError("seed vector size must equal node count");
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  std::vector<V>& x = WsX<V>(ws);
  x.assign(q.begin(), q.end());
  la::Scale(options.restart_probability, x);
  return RunScalarLoop<V>(graph, options, ws, /*frontier_ready=*/false);
}

template <typename V>
StatusOr<la::DenseBlockT<V>> Cpi::RunBatchT(const Graph& graph,
                                            std::span<const NodeId> seeds,
                                            const CpiOptions& options,
                                            Workspace* workspace) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (seeds.empty()) {
    return InvalidArgumentError("seed batch must be non-empty");
  }
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return OutOfRangeError("seed node out of range");
    }
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;

  const NodeId n = graph.num_nodes();
  const double c = options.restart_probability;
  const double decay = 1.0 - c;
  const size_t num_vectors = seeds.size();
  const double limit =
      options.frontier_density_threshold * static_cast<double>(n);

  // x(0) = c·e_s per vector; 1.0·c == c bitwise, matching the scalar path's
  // q[s] = 1.0 followed by Scale(c, ·).
  la::DenseBlockT<V>& x = WsBlockX<V>(ws);
  la::DenseBlockT<V>& next = WsBlockNext<V>(ws);
  x.Resize(n, num_vectors);
  x.SetZero();
  for (size_t b = 0; b < num_vectors; ++b) {
    x.At(seeds[b], b) = static_cast<V>(c);
  }

  la::DenseBlockT<V> acc(n, num_vectors);
  std::vector<char> active(num_vectors, 1);
  size_t remaining = num_vectors;

  // The union frontier: sorted unique seeds, a superset of every vector's
  // support.
  bool sparse = SparseHeadEnabled(options);
  if (sparse) {
    ws.frontier.assign(seeds.begin(), seeds.end());
    std::sort(ws.frontier.begin(), ws.frontier.end());
    ws.frontier.erase(std::unique(ws.frontier.begin(), ws.frontier.end()),
                      ws.frontier.end());
    if (static_cast<double>(ws.frontier.size()) > limit) sparse = false;
  }
  next.Resize(n, num_vectors);
  if (sparse) next.SetZero();  // the recycled buffer starts fully zeroed
  ws.next_frontier.clear();

  if (sparse) {
    remaining = FreezeConverged(
        ScaleAccumulateAndNormsFrontier<V>(1.0, options.start_iteration == 0,
                                           active, remaining, ws.frontier, x,
                                           acc),
        options.tolerance, active, remaining);
  } else {
    if (options.start_iteration == 0) la::BlockAxpy(1.0, x, acc);
    remaining = FreezeConverged(la::BlockColumnNormsL1(x), options.tolerance,
                                active, remaining);
  }

  la::TaskRunner* runner = options.task_runner;
  for (int i = 1; i <= options.terminal_iteration && remaining > 0; ++i) {
    if (sparse && static_cast<double>(ws.frontier.size()) > limit) {
      // Cross to the dense tail here (rather than through the kernel's own
      // fallthrough) so the dense sweep can take the partition-parallel
      // path below; both orders produce bitwise-identical blocks.
      sparse = false;
    }
    if (options.use_pull) {
      graph.MultiplyTransposePullBlockT<V>(x, next);
    } else if (sparse) {
      // Re-zero the stale support of the recycled buffer (the interim
      // block from two iterations ago), then scatter from the frontier.
      for (NodeId j : ws.next_frontier) {
        V* row = next.RowPtr(j);
        std::fill(row, row + num_vectors, V{0});
      }
      const bool stayed = graph.TransitionT<V>().SpMmTransposeFrontier(
          x, ws.frontier, options.frontier_density_threshold, next,
          ws.next_frontier, ws.scratch);
      TPA_DCHECK(stayed);  // the pre-check above mirrors the kernel's
      (void)stayed;
    } else if (runner != nullptr) {
      graph.MultiplyTransposeBlockParallelT<V>(x, next, *runner);
    } else {
      graph.MultiplyTransposeBlockT<V>(x, next);
    }
    x.swap(next);
    std::vector<double> norms;
    if (sparse) {
      ws.frontier.swap(ws.next_frontier);
      norms = ScaleAccumulateAndNormsFrontier<V>(
          decay, i >= options.start_iteration, active, remaining, ws.frontier,
          x, acc);
    } else {
      norms = ScaleAccumulateAndNorms<V>(decay, i >= options.start_iteration,
                                         active, remaining, x, acc);
    }
    remaining = FreezeConverged(norms, options.tolerance, active, remaining);
  }
  return acc;
}

template <typename V>
StatusOr<std::vector<std::vector<V>>> Cpi::RunWindowedT(
    const Graph& graph, const std::vector<V>& q,
    const std::vector<int>& breakpoints, const CpiOptions& options,
    Workspace* workspace) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(options.restart_probability,
                                            options.tolerance));
  TPA_RETURN_IF_ERROR(
      ValidateFrontierThreshold(options.frontier_density_threshold));
  if (q.size() != graph.num_nodes()) {
    return InvalidArgumentError("seed vector size must equal node count");
  }
  if (breakpoints.empty() || breakpoints.front() != 0) {
    return InvalidArgumentError("breakpoints must start at 0");
  }
  for (size_t w = 1; w < breakpoints.size(); ++w) {
    if (breakpoints[w] <= breakpoints[w - 1]) {
      return InvalidArgumentError("breakpoints must be strictly increasing");
    }
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  std::vector<V>& x = WsX<V>(ws);
  std::vector<V>& next = WsNext<V>(ws);

  const NodeId n = graph.num_nodes();
  const double c = options.restart_probability;
  const double decay = 1.0 - c;
  const double limit =
      options.frontier_density_threshold * static_cast<double>(n);
  const size_t num_windows = breakpoints.size();

  std::vector<std::vector<V>> windows(num_windows,
                                      std::vector<V>(n, V{0}));
  auto window_of = [&breakpoints, num_windows](int i) {
    size_t w = num_windows - 1;
    while (w > 0 && i < breakpoints[w]) --w;
    return w;
  };

  x.assign(q.begin(), q.end());
  la::Scale(c, x);
  bool sparse = SparseHeadEnabled(options) &&
                ScanInitialFrontier(x, limit, ws.frontier);
  next.assign(n, V{0});
  ws.next_frontier.clear();

  double norm;
  if (sparse) {
    norm = ScaleAccumulateAndNormFrontier<V>(1.0, ws.frontier, x,
                                             windows[window_of(0)].data());
  } else {
    la::Axpy(1.0, x, windows[window_of(0)]);
    norm = la::NormL1(x);
  }

  for (int i = 1;; ++i) {
    if (norm < options.tolerance) break;
    if (sparse) {
      for (NodeId j : ws.next_frontier) next[j] = V{0};
      const bool stayed = graph.TransitionT<V>().SpMvTransposeFrontier(
          x, ws.frontier, options.frontier_density_threshold, next,
          ws.next_frontier, ws.scratch);
      x.swap(next);
      if (stayed) {
        ws.frontier.swap(ws.next_frontier);
        norm = ScaleAccumulateAndNormFrontier<V>(decay, ws.frontier, x,
                                                 windows[window_of(i)].data());
        continue;
      }
      sparse = false;
      la::Scale(decay, x);
    } else {
      Propagate(graph, options.use_pull, decay, x, next);
      x.swap(next);
    }
    la::Axpy(1.0, x, windows[window_of(i)]);
    norm = la::NormL1(x);
  }
  return windows;
}

StatusOr<std::vector<double>> Cpi::PageRank(const Graph& graph,
                                            const CpiOptions& options) {
  std::vector<double> q(graph.num_nodes(),
                        1.0 / static_cast<double>(graph.num_nodes()));
  TPA_ASSIGN_OR_RETURN(Result result, RunWithSeedVector(graph, q, options));
  return std::move(result.scores);
}

StatusOr<std::vector<double>> Cpi::ExactRwr(const Graph& graph, NodeId seed,
                                            const CpiOptions& options) {
  TPA_ASSIGN_OR_RETURN(Result result, Run(graph, {seed}, options));
  return std::move(result.scores);
}

template StatusOr<Cpi::ResultT<double>> Cpi::RunT<double>(
    const Graph&, const std::vector<NodeId>&, const CpiOptions&, Workspace*);
template StatusOr<Cpi::ResultT<float>> Cpi::RunT<float>(
    const Graph&, const std::vector<NodeId>&, const CpiOptions&, Workspace*);
template StatusOr<Cpi::ResultT<double>> Cpi::RunWithSeedVectorT<double>(
    const Graph&, const std::vector<double>&, const CpiOptions&, Workspace*);
template StatusOr<Cpi::ResultT<float>> Cpi::RunWithSeedVectorT<float>(
    const Graph&, const std::vector<float>&, const CpiOptions&, Workspace*);
template StatusOr<la::DenseBlockT<double>> Cpi::RunBatchT<double>(
    const Graph&, std::span<const NodeId>, const CpiOptions&, Workspace*);
template StatusOr<la::DenseBlockT<float>> Cpi::RunBatchT<float>(
    const Graph&, std::span<const NodeId>, const CpiOptions&, Workspace*);
template StatusOr<std::vector<std::vector<double>>> Cpi::RunWindowedT<double>(
    const Graph&, const std::vector<double>&, const std::vector<int>&,
    const CpiOptions&, Workspace*);
template StatusOr<std::vector<std::vector<float>>> Cpi::RunWindowedT<float>(
    const Graph&, const std::vector<float>&, const std::vector<int>&,
    const CpiOptions&, Workspace*);

}  // namespace tpa
