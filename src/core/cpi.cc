#include "core/cpi.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <type_traits>

#include "la/vector_ops.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace tpa {

Status ValidateFrontierThreshold(double threshold) {
  if (!(threshold >= 0.0 && threshold <= 1.0)) {
    return InvalidArgumentError(
        "frontier_density_threshold must be in [0, 1]");
  }
  return OkStatus();
}

namespace {

Status ValidateOptions(const CpiOptions& options) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(options.restart_probability,
                                            options.tolerance));
  TPA_RETURN_IF_ERROR(
      ValidateFrontierThreshold(options.frontier_density_threshold));
  if (options.start_iteration < 0) {
    return InvalidArgumentError("start_iteration must be non-negative");
  }
  if (options.terminal_iteration < options.start_iteration) {
    return InvalidArgumentError(
        "terminal_iteration must be at least start_iteration");
  }
  return OkStatus();
}

/// Scalar and blocked interim buffers of the workspace at tier V — the
/// other tier's buffers are never touched by a V-run.
template <typename V>
std::vector<V>& WsX(Cpi::Workspace& ws) {
  if constexpr (std::is_same_v<V, double>) {
    return ws.x;
  } else {
    return ws.x_f;
  }
}
template <typename V>
std::vector<V>& WsNext(Cpi::Workspace& ws) {
  if constexpr (std::is_same_v<V, double>) {
    return ws.next;
  } else {
    return ws.next_f;
  }
}
template <typename V>
la::DenseBlockT<V>& WsBlockX(Cpi::Workspace& ws) {
  if constexpr (std::is_same_v<V, double>) {
    return ws.block_x;
  } else {
    return ws.block_x_f;
  }
}
template <typename V>
la::DenseBlockT<V>& WsBlockNext(Cpi::Workspace& ws) {
  if constexpr (std::is_same_v<V, double>) {
    return ws.block_next;
  } else {
    return ws.block_next_f;
  }
}

template <typename V>
void Propagate(const Graph& graph, bool use_pull, double decay,
               const std::vector<V>& x, std::vector<V>& y) {
  if (use_pull) {
    graph.MultiplyTransposePullT<V>(x, y);
  } else {
    graph.MultiplyTransposeT<V>(x, y);
  }
  la::Scale(decay, y);
}

/// Scalar post-propagate phase of a sparse-head iteration, restricted to the
/// frontier (a sorted superset of x's support): x ·= decay, scores += x,
/// returns ‖x‖₁.  Entries off the frontier are exactly +0.0, and adding or
/// scaling +0.0 is a bitwise no-op, so this reproduces the dense
/// Scale → Axpy → NormL1 sequence exactly — at either tier: the product is
/// taken in fp64, rounded once to V on store, and the accumulation and norm
/// read the stored (rounded) value just like the dense passes would.
/// `scores` may be null (window outside [s_iter, t_iter]).
template <typename V>
double ScaleAccumulateAndNormFrontier(double decay,
                                      std::span<const NodeId> frontier,
                                      std::vector<V>& x, V* scores) {
  double norm = 0.0;
  for (NodeId i : frontier) {
    const V v = static_cast<V>(static_cast<double>(x[i]) * decay);
    x[i] = v;
    if (scores != nullptr) scores[i] += static_cast<double>(v);
    norm += std::abs(static_cast<double>(v));
  }
  return norm;
}

/// The blocked equivalent of one scalar post-propagate phase — Scale(decay),
/// Axpy into the accumulator, NormL1 — fused into a single streaming pass
/// over the block (three separate n×B sweeps would triple the dominant
/// dense traffic of a batched iteration).  Per element the arithmetic and
/// its order match the scalar phases exactly: v = x·decay, acc += v (for
/// vectors still accumulating), norm_b += |v| over rows in ascending
/// order.  A frozen vector keeps propagating through the shared SpMM
/// (cheaper than compacting the block) but stops accumulating, exactly
/// like its scalar loop breaking.
template <typename V>
std::vector<double> ScaleAccumulateAndNorms(double decay, bool accumulate,
                                            const std::vector<char>& active,
                                            size_t remaining,
                                            la::DenseBlockT<V>& x,
                                            la::DenseBlockT<V>& acc) {
  const size_t num_vectors = x.num_vectors();
  std::vector<double> norms(num_vectors, 0.0);
  const bool all_active = remaining == num_vectors;
  double* norms_data = norms.data();
  for (size_t r = 0; r < x.rows(); ++r) {
    V* __restrict xr = x.RowPtr(r);
    V* __restrict ar = acc.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) {
      const V v = static_cast<V>(static_cast<double>(xr[b]) * decay);
      xr[b] = v;
      if (accumulate && (all_active || active[b])) {
        ar[b] += static_cast<double>(v);
      }
      norms_data[b] += std::abs(static_cast<double>(v));
    }
  }
  return norms;
}

/// Frontier-restricted variant of ScaleAccumulateAndNorms: the same fused
/// pass over only the union-frontier rows (sorted ascending), which is a
/// superset of every vector's support.  Rows off the frontier hold exact
/// +0.0 in all B lanes, so skipping them is a bitwise no-op against the
/// full sweep.  With decay == 1.0 this doubles as the x(0) accumulation
/// pass (v = x·1.0 is bitwise x for the NaN/Inf/−0.0-free inputs the
/// kernels already assume).
template <typename V>
std::vector<double> ScaleAccumulateAndNormsFrontier(
    double decay, bool accumulate, const std::vector<char>& active,
    size_t remaining, std::span<const NodeId> frontier, la::DenseBlockT<V>& x,
    la::DenseBlockT<V>& acc) {
  const size_t num_vectors = x.num_vectors();
  std::vector<double> norms(num_vectors, 0.0);
  const bool all_active = remaining == num_vectors;
  double* norms_data = norms.data();
  for (NodeId r : frontier) {
    V* __restrict xr = x.RowPtr(r);
    V* __restrict ar = acc.RowPtr(r);
    for (size_t b = 0; b < num_vectors; ++b) {
      const V v = static_cast<V>(static_cast<double>(xr[b]) * decay);
      xr[b] = v;
      if (accumulate && (all_active || active[b])) {
        ar[b] += static_cast<double>(v);
      }
      norms_data[b] += std::abs(static_cast<double>(v));
    }
  }
  return norms;
}

/// Marks vectors whose interim norm dropped below tolerance as frozen;
/// returns how many remain active.
size_t FreezeConverged(const std::vector<double>& norms, double tolerance,
                       std::vector<char>& active, size_t remaining) {
  for (size_t b = 0; b < norms.size(); ++b) {
    if (active[b] && norms[b] < tolerance) {
      active[b] = 0;
      --remaining;
    }
  }
  return remaining;
}

/// Whether the adaptive head applies at all: the frontier kernels are
/// scatter-shaped, so the pull flavor always runs dense.
bool SparseHeadEnabled(const CpiOptions& options) {
  return !options.use_pull && options.frontier_density_threshold > 0.0;
}

/// Scans x for its support and leaves it, sorted, in `frontier`.  Bails out
/// (returns false) once the support exceeds the density limit — the run
/// starts dense and no frontier is needed.
template <typename V>
bool ScanInitialFrontier(const std::vector<V>& x, double limit,
                         std::vector<NodeId>& frontier) {
  frontier.clear();
  for (NodeId i = 0; i < x.size(); ++i) {
    if (x[i] == V{0}) continue;
    frontier.push_back(i);
    if (static_cast<double>(frontier.size()) > limit) return false;
  }
  return true;
}

/// No-op iteration observer of the scalar loop — the default instantiation
/// optimizes out entirely, keeping RunT bitwise- and cost-identical to the
/// pre-observer loop.
template <typename V>
struct NullObserver {
  bool AfterIteration(int, bool, const Cpi::ResultT<V>&,
                      const Cpi::Workspace&) {
    return false;
  }
};

/// Records a context abort after iteration `i` in both the result and the
/// context (the certified bound covers the iterations that never ran).
template <typename V>
void RecordAbort(QueryContext& context, StatusCode code, int i,
                 const CpiOptions& options, Cpi::ResultT<V>& result) {
  const double bound = CpiRemainingMassBound(
      result.last_interim_norm, options.restart_probability,
      options.tolerance, i, options.terminal_iteration);
  result.abort_code = code;
  result.remaining_mass_bound = bound;
  context.aborted = true;
  context.abort_code = code;
  context.aborted_at_iteration = i;
  context.error_bound = bound;
}

/// The per-iteration context poll of the scalar loop: true (and records the
/// abort) when the run should stop after iteration `i`.  Null context is
/// one untaken branch.
template <typename V>
bool AbortAfterIteration(QueryContext* context, int i,
                         const CpiOptions& options, Cpi::ResultT<V>& result) {
  if (context == nullptr || i < context->min_iterations) return false;
  const StatusCode code = context->AbortNow();
  if (code == StatusCode::kOk) return false;
  RecordAbort(*context, code, i, options, result);
  return true;
}

/// Shared scalar CPI loop.  Preconditions: options validated; the tier-V
/// interim buffer holds x(0) = c·q; when frontier_ready, ws.frontier holds
/// x(0)'s support sorted ascending (callers with explicit seed lists skip
/// the O(n) support scan).
///
/// `observer.AfterIteration(i, sparse, result, ws)` runs once per computed
/// iteration, after its accumulation and norm (when `sparse`, ws.frontier
/// holds x(i)'s support sorted ascending).  Returning true stops the run
/// after the current iteration — the bound-driven top-k path's early
/// termination; convergence still takes precedence in the result flags.
template <typename V, typename Observer>
Cpi::ResultT<V> RunScalarLoopObserved(const Graph& graph,
                                      const CpiOptions& options,
                                      Cpi::Workspace& ws, bool frontier_ready,
                                      Observer& observer,
                                      QueryContext* context = nullptr) {
  const NodeId n = graph.num_nodes();
  const double decay = 1.0 - options.restart_probability;
  const double limit =
      options.frontier_density_threshold * static_cast<double>(n);
  std::vector<V>& x = WsX<V>(ws);
  std::vector<V>& next = WsNext<V>(ws);

  Cpi::ResultT<V> result;
  result.scores.assign(n, V{0});

  bool sparse = SparseHeadEnabled(options);
  if (sparse && !frontier_ready) {
    sparse = ScanInitialFrontier(x, limit, ws.frontier);
  }
  if (sparse && static_cast<double>(ws.frontier.size()) > limit) {
    sparse = false;
  }
  next.assign(n, V{0});
  ws.next_frontier.clear();  // the recycled buffer starts fully zeroed

  // x(0) accumulation + interim norm.
  if (sparse) {
    result.last_interim_norm = ScaleAccumulateAndNormFrontier<V>(
        1.0, ws.frontier, x,
        options.start_iteration == 0 ? result.scores.data() : nullptr);
  } else {
    if (options.start_iteration == 0) la::Axpy(1.0, x, result.scores);
    result.last_interim_norm = la::NormL1(x);
  }
  const bool stop0 = observer.AfterIteration(0, sparse, result, ws);
  if (result.last_interim_norm < options.tolerance) {
    result.converged = true;
    return result;
  }
  if (stop0) return result;
  if (AbortAfterIteration(context, 0, options, result)) return result;

  for (int i = 1; i <= options.terminal_iteration; ++i) {
    // Propagation-site failpoint (no-op unless TPA_FAILPOINTS=ON): a delay
    // armed here makes a deadline expire mid-query deterministically.
    TPA_FAILPOINT_HIT("cpi.iteration");
    if (sparse) {
      // Re-zero the stale support of the recycled buffer (the interim
      // vector from two iterations ago), then scatter from the frontier.
      for (NodeId j : ws.next_frontier) next[j] = V{0};
      const bool stayed = graph.TransitionT<V>().SpMvTransposeFrontier(
          x, ws.frontier, options.frontier_density_threshold, next,
          ws.next_frontier, ws.scratch);
      x.swap(next);
      result.last_iteration = i;
      if (stayed) {
        ws.frontier.swap(ws.next_frontier);
        result.last_interim_norm = ScaleAccumulateAndNormFrontier<V>(
            decay, ws.frontier, x,
            i >= options.start_iteration ? result.scores.data() : nullptr);
      } else {
        // The kernel fell through to the dense scatter; finish this
        // iteration with the dense post-passes and stay dense.
        sparse = false;
        la::Scale(decay, x);
        if (i >= options.start_iteration) la::Axpy(1.0, x, result.scores);
        result.last_interim_norm = la::NormL1(x);
      }
    } else {
      Propagate(graph, options.use_pull, decay, x, next);
      x.swap(next);
      result.last_iteration = i;
      if (i >= options.start_iteration) la::Axpy(1.0, x, result.scores);
      result.last_interim_norm = la::NormL1(x);
    }
    // The observer runs before the convergence check so it sees the final
    // iteration's frontier too (it may be tracking the touched support).
    const bool stop = observer.AfterIteration(i, sparse, result, ws);
    if (result.last_interim_norm < options.tolerance) {
      result.converged = true;
      break;
    }
    if (stop) break;
    // Convergence outranks the abort: a run stopped by its own tolerance
    // is a complete answer even if the deadline also just passed.
    if (AbortAfterIteration(context, i, options, result)) break;
  }
  return result;
}

template <typename V>
Cpi::ResultT<V> RunScalarLoop(const Graph& graph, const CpiOptions& options,
                              Cpi::Workspace& ws, bool frontier_ready,
                              QueryContext* context = nullptr) {
  NullObserver<V> observer;
  return RunScalarLoopObserved<V>(graph, options, ws, frontier_ready,
                                  observer, context);
}

/// Builds x(0) = c·q for a uniform seed set directly in the workspace —
/// q[s] += share per seed, then the support scaled by c, bitwise-identical
/// to materializing q and Scale(c, ·) over all n (off-support entries are
/// exact +0.0 and 0·c is a bitwise no-op) without the extra n-length
/// vector.  Leaves the sorted unique support in ws.frontier.
template <typename V>
void BuildSeedStart(const Graph& graph, const std::vector<NodeId>& seeds,
                    const CpiOptions& options, Cpi::Workspace& ws) {
  std::vector<V>& x = WsX<V>(ws);
  x.assign(graph.num_nodes(), V{0});
  const double share = 1.0 / static_cast<double>(seeds.size());
  for (NodeId s : seeds) x[s] += share;

  ws.frontier.assign(seeds.begin(), seeds.end());
  std::sort(ws.frontier.begin(), ws.frontier.end());
  ws.frontier.erase(std::unique(ws.frontier.begin(), ws.frontier.end()),
                    ws.frontier.end());
  const double c = options.restart_probability;
  for (NodeId i : ws.frontier) x[i] *= c;
}

/// Iteration observer of the bound-driven top-k runner.  Tracks the touched
/// support (the union of the sparse head's frontiers — a superset of the
/// accumulated scores' support) and, after each iteration, whether the
/// current top-k candidates are separated from every other node's
/// upper bound by more than the remaining-mass slack.  Certification scans
/// are gated: a scan only runs once the slack has dropped below the
/// smallest separating gap the previous scan saw (so a query whose gaps can
/// never be certified pays for at most one selection pass).
template <typename V>
class TopKTracker {
 public:
  TopKTracker(const Graph& graph, const CpiOptions& options,
              const Cpi::TopKRunOptions& topk, const Cpi::TopKBaseT<V>& base)
      : n_(graph.num_nodes()),
        k_(std::min(static_cast<size_t>(topk.k), static_cast<size_t>(n_))),
        allow_early_(topk.allow_early_termination),
        decay_(1.0 - options.restart_probability),
        tolerance_(options.tolerance),
        terminal_(options.terminal_iteration),
        base_(base) {}

  bool AfterIteration(int i, bool sparse, const Cpi::ResultT<V>& result,
                      const Cpi::Workspace& ws) {
    if (support_known_) {
      if (sparse) {
        MergeTouched(ws.frontier);
      } else {
        support_known_ = false;  // dense tail: support no longer enumerated
      }
    }
    if (!allow_early_ || k_ == 0) return false;
    const double norm = result.last_interim_norm;
    if (norm < tolerance_) return false;  // converging naturally anyway
    const double slack = Slack(norm, i);
    if (slack >= scan_gate_) return false;
    SelectCandidates(result.scores);
    scan_gate_ = selector_.MinCertGap(k_);
    if (selector_.CertifiesTopK(k_, slack)) {
      certified_ = true;
      return true;
    }
    return false;
  }

  TopKQueryResult Finalize(const Cpi::ResultT<V>& result) {
    TopKQueryResult out;
    out.last_iteration = result.last_iteration;
    out.converged = result.converged;
    out.early_terminated = certified_ && !result.converged;
    // On early termination the certified selection (partial scores, exact
    // ranks) is the answer; at a natural end a fresh selection over the
    // final scores yields the exact merged values.
    if (!certified_) SelectCandidates(result.scores);
    const auto held = selector_.entries();
    const size_t take = std::min(k_, held.size());
    out.top.assign(held.begin(), held.begin() + take);
    return out;
  }

 private:
  /// Most any node's merged score can still gain after iteration i with
  /// interim norm `norm`: the geometric tail over the iterations the window
  /// can still accumulate, through the merge's post-scale, plus an absolute
  /// slop covering the merge's own rounding (a few fp64 ulps of unit-scale
  /// scores; fp32 storage rounds at ~1e-7 of value, covered by 1e-5).
  double Slack(double norm, int i) const {
    int left = terminal_ == CpiOptions::kUnbounded
                   ? std::numeric_limits<int>::max()
                   : terminal_ - i;
    // Convergence horizon: norm_j ≤ norm·decay^j, and the first iteration
    // whose norm lands below ε is the last one accumulated — floor+1 (not
    // ceil) so the horizon is never under-counted.
    const double ratio = std::log(tolerance_ / norm) / std::log(decay_);
    const int horizon = static_cast<int>(std::floor(ratio)) + 1;
    left = std::min(left, std::max(horizon, 0));
    constexpr double kSlop = std::is_same_v<V, double> ? 1e-14 : 1e-5;
    return base_.post_scale * la::GeometricTailMass(norm, decay_, left) +
           kSlop;
  }

  /// Merged value of a touched node — matches la::Scale(post_scale, ·) then
  /// la::Axpy(1.0, base, ·) bitwise: each product and sum computed in fp64,
  /// rounded to V once per step.
  double Merged(V p, NodeId v) const {
    const V scaled =
        static_cast<V>(base_.post_scale * static_cast<double>(p));
    if (base_.base == nullptr) return static_cast<double>(scaled);
    return static_cast<double>(static_cast<V>(
        static_cast<double>(scaled) + static_cast<double>((*base_.base)[v])));
  }

  void MergeTouched(std::span<const NodeId> frontier) {
    if (touched_.empty()) {
      touched_.assign(frontier.begin(), frontier.end());
      return;
    }
    merge_tmp_.clear();
    merge_tmp_.reserve(touched_.size() + frontier.size());
    std::set_union(touched_.begin(), touched_.end(), frontier.begin(),
                   frontier.end(), std::back_inserter(merge_tmp_));
    touched_.swap(merge_tmp_);
  }

  bool IsTouched(NodeId v) const {
    return std::binary_search(touched_.begin(), touched_.end(), v);
  }

  /// Offers every candidate that could rank: the whole touched support at
  /// its merged value, plus the k+1 best never-touched nodes — their merged
  /// value is exactly the base value (or exact zero with no base), so
  /// walking the base-descending order (or id-ascending without a base) and
  /// skipping touched nodes covers the best excluded candidates without
  /// scanning all n.  Falls back to the full scan once the support is no
  /// longer enumerated.
  void SelectCandidates(const std::vector<V>& scores) {
    selector_.Reset(k_ + 1);
    if (!support_known_) {
      for (NodeId v = 0; v < n_; ++v) selector_.Offer(v, Merged(scores[v], v));
      return;
    }
    for (NodeId v : touched_) selector_.Offer(v, Merged(scores[v], v));
    size_t offered = 0;
    if (base_.base != nullptr) {
      for (NodeId v : base_.order) {
        if (offered > k_) break;
        if (IsTouched(v)) continue;
        selector_.Offer(v, static_cast<double>((*base_.base)[v]));
        ++offered;
      }
    } else {
      auto it = touched_.begin();
      for (NodeId v = 0; v < n_ && offered <= k_; ++v) {
        while (it != touched_.end() && *it < v) ++it;
        if (it != touched_.end() && *it == v) continue;
        selector_.Offer(v, 0.0);
        ++offered;
      }
    }
  }

  const NodeId n_;
  const size_t k_;
  const bool allow_early_;
  const double decay_;
  const double tolerance_;
  const int terminal_;
  Cpi::TopKBaseT<V> base_;
  bool support_known_ = true;
  bool certified_ = false;
  double scan_gate_ = std::numeric_limits<double>::infinity();
  std::vector<NodeId> touched_;
  std::vector<NodeId> merge_tmp_;
  la::TopKSelector selector_;
};

}  // namespace

Status ValidateCpiParameters(double restart_probability, double tolerance) {
  if (!(restart_probability > 0.0 && restart_probability < 1.0)) {
    return InvalidArgumentError("restart probability must be in (0,1)");
  }
  if (!(tolerance > 0.0)) {
    return InvalidArgumentError("tolerance must be positive");
  }
  return OkStatus();
}

int CpiIterationCount(double restart_probability, double tolerance) {
  const double c = restart_probability;
  return static_cast<int>(
      std::ceil(std::log(tolerance / c) / std::log(1.0 - c)));
}

double CpiRemainingMassBound(double last_interim_norm,
                             double restart_probability, double tolerance,
                             int last_iteration, int terminal_iteration) {
  if (last_interim_norm < tolerance) return 0.0;
  const double decay = 1.0 - restart_probability;
  int left = terminal_iteration == CpiOptions::kUnbounded
                 ? std::numeric_limits<int>::max()
                 : terminal_iteration - last_iteration;
  // Convergence horizon, mirroring the top-k tracker's slack: interim
  // norms shrink at least geometrically, so the first iteration whose norm
  // lands below ε is the last one the window would have accumulated.
  const double ratio =
      std::log(tolerance / last_interim_norm) / std::log(decay);
  const int horizon = static_cast<int>(std::floor(ratio)) + 1;
  left = std::min(left, std::max(horizon, 0));
  return la::GeometricTailMass(last_interim_norm, decay, left);
}

template <typename V>
StatusOr<Cpi::ResultT<V>> Cpi::RunT(const Graph& graph,
                                    const std::vector<NodeId>& seeds,
                                    const CpiOptions& options,
                                    Workspace* workspace,
                                    QueryContext* context) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (seeds.empty()) return InvalidArgumentError("seed set must be non-empty");
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return OutOfRangeError("seed node out of range");
    }
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  BuildSeedStart<V>(graph, seeds, options, ws);
  return RunScalarLoop<V>(graph, options, ws, /*frontier_ready=*/true,
                          context);
}

template <typename V>
StatusOr<Cpi::ResultT<V>> Cpi::RunWithSeedVectorT(const Graph& graph,
                                                  const std::vector<V>& q,
                                                  const CpiOptions& options,
                                                  Workspace* workspace) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (q.size() != graph.num_nodes()) {
    return InvalidArgumentError("seed vector size must equal node count");
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  std::vector<V>& x = WsX<V>(ws);
  x.assign(q.begin(), q.end());
  la::Scale(options.restart_probability, x);
  return RunScalarLoop<V>(graph, options, ws, /*frontier_ready=*/false);
}

template <typename V>
StatusOr<la::DenseBlockT<V>> Cpi::RunBatchT(
    const Graph& graph, std::span<const NodeId> seeds,
    const CpiOptions& options, Workspace* workspace,
    std::span<QueryContext* const> contexts) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (seeds.empty()) {
    return InvalidArgumentError("seed batch must be non-empty");
  }
  if (!contexts.empty() && contexts.size() != seeds.size()) {
    return InvalidArgumentError(
        "contexts must be empty or align with the seed batch");
  }
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return OutOfRangeError("seed node out of range");
    }
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;

  const NodeId n = graph.num_nodes();
  const double c = options.restart_probability;
  const double decay = 1.0 - c;
  const size_t num_vectors = seeds.size();
  const double limit =
      options.frontier_density_threshold * static_cast<double>(n);

  // x(0) = c·e_s per vector; 1.0·c == c bitwise, matching the scalar path's
  // q[s] = 1.0 followed by Scale(c, ·).
  la::DenseBlockT<V>& x = WsBlockX<V>(ws);
  la::DenseBlockT<V>& next = WsBlockNext<V>(ws);
  x.Resize(n, num_vectors);
  x.SetZero();
  for (size_t b = 0; b < num_vectors; ++b) {
    x.At(seeds[b], b) = static_cast<V>(c);
  }

  la::DenseBlockT<V> acc(n, num_vectors);
  std::vector<char> active(num_vectors, 1);
  size_t remaining = num_vectors;

  // Aborting seeds drop out through the same freeze the convergence check
  // uses: the frozen vector rides the shared SpMM but stops accumulating,
  // so its block column is bitwise the aborted scalar run's scores.  Runs
  // after FreezeConverged so convergence outranks the abort.
  auto freeze_aborted = [&](int i, const std::vector<double>& norms) {
    if (contexts.empty()) return;
    for (size_t b = 0; b < num_vectors; ++b) {
      QueryContext* context = contexts[b];
      if (!active[b] || context == nullptr) continue;
      if (i < context->min_iterations) continue;
      const StatusCode code = context->AbortNow();
      if (code == StatusCode::kOk) continue;
      const double bound = CpiRemainingMassBound(
          norms[b], options.restart_probability, options.tolerance, i,
          options.terminal_iteration);
      context->aborted = true;
      context->abort_code = code;
      context->aborted_at_iteration = i;
      context->error_bound = bound;
      active[b] = 0;
      --remaining;
    }
  };

  // The union frontier: sorted unique seeds, a superset of every vector's
  // support.
  bool sparse = SparseHeadEnabled(options);
  if (sparse) {
    ws.frontier.assign(seeds.begin(), seeds.end());
    std::sort(ws.frontier.begin(), ws.frontier.end());
    ws.frontier.erase(std::unique(ws.frontier.begin(), ws.frontier.end()),
                      ws.frontier.end());
    if (static_cast<double>(ws.frontier.size()) > limit) sparse = false;
  }
  next.Resize(n, num_vectors);
  if (sparse) next.SetZero();  // the recycled buffer starts fully zeroed
  ws.next_frontier.clear();

  {
    std::vector<double> norms0;
    if (sparse) {
      norms0 = ScaleAccumulateAndNormsFrontier<V>(
          1.0, options.start_iteration == 0, active, remaining, ws.frontier,
          x, acc);
    } else {
      if (options.start_iteration == 0) la::BlockAxpy(1.0, x, acc);
      norms0 = la::BlockColumnNormsL1(x);
    }
    remaining = FreezeConverged(norms0, options.tolerance, active, remaining);
    freeze_aborted(0, norms0);
  }

  la::TaskRunner* runner = options.task_runner;
  for (int i = 1; i <= options.terminal_iteration && remaining > 0; ++i) {
    TPA_FAILPOINT_HIT("cpi.iteration");
    if (sparse && static_cast<double>(ws.frontier.size()) > limit) {
      // Cross to the dense tail here (rather than through the kernel's own
      // fallthrough) so the dense sweep can take the partition-parallel
      // path below; both orders produce bitwise-identical blocks.
      sparse = false;
    }
    if (options.use_pull) {
      graph.MultiplyTransposePullBlockT<V>(x, next);
    } else if (sparse) {
      // Re-zero the stale support of the recycled buffer (the interim
      // block from two iterations ago), then scatter from the frontier.
      for (NodeId j : ws.next_frontier) {
        V* row = next.RowPtr(j);
        std::fill(row, row + num_vectors, V{0});
      }
      const bool stayed = graph.TransitionT<V>().SpMmTransposeFrontier(
          x, ws.frontier, options.frontier_density_threshold, next,
          ws.next_frontier, ws.scratch);
      TPA_DCHECK(stayed);  // the pre-check above mirrors the kernel's
      (void)stayed;
    } else if (runner != nullptr) {
      graph.MultiplyTransposeBlockParallelT<V>(x, next, *runner);
    } else {
      graph.MultiplyTransposeBlockT<V>(x, next);
    }
    x.swap(next);
    std::vector<double> norms;
    if (sparse) {
      ws.frontier.swap(ws.next_frontier);
      norms = ScaleAccumulateAndNormsFrontier<V>(
          decay, i >= options.start_iteration, active, remaining, ws.frontier,
          x, acc);
    } else {
      norms = ScaleAccumulateAndNorms<V>(decay, i >= options.start_iteration,
                                         active, remaining, x, acc);
    }
    remaining = FreezeConverged(norms, options.tolerance, active, remaining);
    freeze_aborted(i, norms);
  }
  return acc;
}

template <typename V>
StatusOr<std::vector<std::vector<V>>> Cpi::RunWindowedT(
    const Graph& graph, const std::vector<V>& q,
    const std::vector<int>& breakpoints, const CpiOptions& options,
    Workspace* workspace) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(options.restart_probability,
                                            options.tolerance));
  TPA_RETURN_IF_ERROR(
      ValidateFrontierThreshold(options.frontier_density_threshold));
  if (q.size() != graph.num_nodes()) {
    return InvalidArgumentError("seed vector size must equal node count");
  }
  if (breakpoints.empty() || breakpoints.front() != 0) {
    return InvalidArgumentError("breakpoints must start at 0");
  }
  for (size_t w = 1; w < breakpoints.size(); ++w) {
    if (breakpoints[w] <= breakpoints[w - 1]) {
      return InvalidArgumentError("breakpoints must be strictly increasing");
    }
  }
  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  std::vector<V>& x = WsX<V>(ws);
  std::vector<V>& next = WsNext<V>(ws);

  const NodeId n = graph.num_nodes();
  const double c = options.restart_probability;
  const double decay = 1.0 - c;
  const double limit =
      options.frontier_density_threshold * static_cast<double>(n);
  const size_t num_windows = breakpoints.size();

  std::vector<std::vector<V>> windows(num_windows,
                                      std::vector<V>(n, V{0}));
  auto window_of = [&breakpoints, num_windows](int i) {
    size_t w = num_windows - 1;
    while (w > 0 && i < breakpoints[w]) --w;
    return w;
  };

  x.assign(q.begin(), q.end());
  la::Scale(c, x);
  bool sparse = SparseHeadEnabled(options) &&
                ScanInitialFrontier(x, limit, ws.frontier);
  next.assign(n, V{0});
  ws.next_frontier.clear();

  double norm;
  if (sparse) {
    norm = ScaleAccumulateAndNormFrontier<V>(1.0, ws.frontier, x,
                                             windows[window_of(0)].data());
  } else {
    la::Axpy(1.0, x, windows[window_of(0)]);
    norm = la::NormL1(x);
  }

  for (int i = 1;; ++i) {
    if (norm < options.tolerance) break;
    if (sparse) {
      for (NodeId j : ws.next_frontier) next[j] = V{0};
      const bool stayed = graph.TransitionT<V>().SpMvTransposeFrontier(
          x, ws.frontier, options.frontier_density_threshold, next,
          ws.next_frontier, ws.scratch);
      x.swap(next);
      if (stayed) {
        ws.frontier.swap(ws.next_frontier);
        norm = ScaleAccumulateAndNormFrontier<V>(decay, ws.frontier, x,
                                                 windows[window_of(i)].data());
        continue;
      }
      sparse = false;
      la::Scale(decay, x);
    } else {
      Propagate(graph, options.use_pull, decay, x, next);
      x.swap(next);
    }
    la::Axpy(1.0, x, windows[window_of(i)]);
    norm = la::NormL1(x);
  }
  return windows;
}

StatusOr<std::vector<double>> Cpi::PageRank(const Graph& graph,
                                            const CpiOptions& options) {
  std::vector<double> q(graph.num_nodes(),
                        1.0 / static_cast<double>(graph.num_nodes()));
  TPA_ASSIGN_OR_RETURN(Result result, RunWithSeedVector(graph, q, options));
  return std::move(result.scores);
}

StatusOr<std::vector<double>> Cpi::ExactRwr(const Graph& graph, NodeId seed,
                                            const CpiOptions& options) {
  TPA_ASSIGN_OR_RETURN(Result result, Run(graph, {seed}, options));
  return std::move(result.scores);
}

template <typename V>
StatusOr<TopKQueryResult> Cpi::RunTopKT(const Graph& graph,
                                        const std::vector<NodeId>& seeds,
                                        const CpiOptions& options,
                                        const TopKRunOptions& topk,
                                        const TopKBaseT<V>& base,
                                        Workspace* workspace,
                                        QueryContext* context) {
  TPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (seeds.empty()) return InvalidArgumentError("seed set must be non-empty");
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return OutOfRangeError("seed node out of range");
    }
  }
  if (topk.k < 0) return InvalidArgumentError("k must be non-negative");
  if (!(base.post_scale >= 0.0)) {
    return InvalidArgumentError("post_scale must be non-negative");
  }
  if (base.base != nullptr) {
    if (base.base->size() != graph.num_nodes()) {
      return InvalidArgumentError("base vector size must equal node count");
    }
    if (base.order.size() != graph.num_nodes()) {
      return InvalidArgumentError("base order must rank all nodes");
    }
  } else if (!base.order.empty()) {
    return InvalidArgumentError("base order given without a base vector");
  }

  Workspace local;
  Workspace& ws = workspace != nullptr ? *workspace : local;
  BuildSeedStart<V>(graph, seeds, options, ws);
  TopKTracker<V> tracker(graph, options, topk, base);
  const ResultT<V> result = RunScalarLoopObserved<V>(
      graph, options, ws, /*frontier_ready=*/true, tracker, context);
  if (result.abort_code != StatusCode::kOk) {
    // An uncertified partial ranking is not an answer — top-k aborts are
    // always errors (the dense path is the degradable one).
    return context->AbortStatus();
  }
  return tracker.Finalize(result);
}

template StatusOr<Cpi::ResultT<double>> Cpi::RunT<double>(
    const Graph&, const std::vector<NodeId>&, const CpiOptions&, Workspace*,
    QueryContext*);
template StatusOr<Cpi::ResultT<float>> Cpi::RunT<float>(
    const Graph&, const std::vector<NodeId>&, const CpiOptions&, Workspace*,
    QueryContext*);
template StatusOr<Cpi::ResultT<double>> Cpi::RunWithSeedVectorT<double>(
    const Graph&, const std::vector<double>&, const CpiOptions&, Workspace*);
template StatusOr<Cpi::ResultT<float>> Cpi::RunWithSeedVectorT<float>(
    const Graph&, const std::vector<float>&, const CpiOptions&, Workspace*);
template StatusOr<la::DenseBlockT<double>> Cpi::RunBatchT<double>(
    const Graph&, std::span<const NodeId>, const CpiOptions&, Workspace*,
    std::span<QueryContext* const>);
template StatusOr<la::DenseBlockT<float>> Cpi::RunBatchT<float>(
    const Graph&, std::span<const NodeId>, const CpiOptions&, Workspace*,
    std::span<QueryContext* const>);
template StatusOr<std::vector<std::vector<double>>> Cpi::RunWindowedT<double>(
    const Graph&, const std::vector<double>&, const std::vector<int>&,
    const CpiOptions&, Workspace*);
template StatusOr<std::vector<std::vector<float>>> Cpi::RunWindowedT<float>(
    const Graph&, const std::vector<float>&, const std::vector<int>&,
    const CpiOptions&, Workspace*);
template StatusOr<TopKQueryResult> Cpi::RunTopKT<double>(
    const Graph&, const std::vector<NodeId>&, const CpiOptions&,
    const TopKRunOptions&, const TopKBaseT<double>&, Workspace*,
    QueryContext*);
template StatusOr<TopKQueryResult> Cpi::RunTopKT<float>(
    const Graph&, const std::vector<NodeId>&, const CpiOptions&,
    const TopKRunOptions&, const TopKBaseT<float>&, Workspace*,
    QueryContext*);

}  // namespace tpa
