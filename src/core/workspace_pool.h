#ifndef TPA_CORE_WORKSPACE_POOL_H_
#define TPA_CORE_WORKSPACE_POOL_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/cpi.h"

namespace tpa {

/// Thread-safe checkout pool of Cpi::Workspace instances.
///
/// A workspace holds the propagation loop's full-n scratch buffers, so the
/// working set scales with how many are alive.  A thread_local workspace
/// (the previous scheme) creates one per thread that ever served a query —
/// and pool jobs hopping between workers each re-warm a cold one.  The pool
/// bounds the population by *concurrency* instead: Acquire hands out an idle
/// workspace when one exists and creates a new one only when every existing
/// workspace is checked out, so the total never exceeds the peak number of
/// simultaneous queries (regression-tested against the serving pool size).
/// Buffers stay warm across queries regardless of which thread runs next.
class WorkspacePool {
 public:
  /// RAII checkout: returns the workspace on destruction.  Movable so
  /// Acquire can hand it out by value; not copyable.
  class Lease {
   public:
    Lease(WorkspacePool* pool, std::unique_ptr<Cpi::Workspace> workspace)
        : pool_(pool), workspace_(std::move(workspace)) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), workspace_(std::move(other.workspace_)) {
      other.pool_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (pool_ != nullptr) pool_->Release(std::move(workspace_));
    }

    Cpi::Workspace& operator*() { return *workspace_; }
    Cpi::Workspace* get() { return workspace_.get(); }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<Cpi::Workspace> workspace_;
  };

  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Checks out an idle workspace, creating one only when none is idle.
  Lease Acquire();

  /// Total workspaces ever created (== peak simultaneous checkouts).
  size_t created() const;
  /// Workspaces currently idle in the pool.
  size_t available() const;

 private:
  void Release(std::unique_ptr<Cpi::Workspace> workspace);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Cpi::Workspace>> idle_;
  size_t created_ = 0;
};

}  // namespace tpa

#endif  // TPA_CORE_WORKSPACE_POOL_H_
