#ifndef TPA_CORE_CPI_H_
#define TPA_CORE_CPI_H_

#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "la/csr_matrix.h"
#include "la/dense_block.h"
#include "la/precision.h"
#include "la/task_runner.h"
#include "la/topk.h"
#include "util/query_context.h"
#include "util/status.h"

namespace tpa {

/// Options for Cumulative Power Iteration (paper Algorithm 1).
struct CpiOptions {
  /// Restart probability c (the paper uses 0.15 everywhere).
  double restart_probability = 0.15;
  /// Convergence tolerance ε: iteration stops once ‖x(i)‖₁ < ε.
  double tolerance = 1e-9;
  /// First accumulated iteration (s_iter).  0 includes the seed mass x(0).
  int start_iteration = 0;
  /// Last accumulated iteration (t_iter), inclusive; kUnbounded runs to
  /// convergence.
  int terminal_iteration = kUnbounded;
  /// Gather (pull) matvec over in-edges instead of scatter over out-edges;
  /// identical results, different memory access pattern (ablation knob).
  bool use_pull = false;
  /// Frontier-adaptive propagation (push flavor only): iterations run
  /// frontier-sparse — scattering only from the interim vector's nonzero
  /// rows and touching only the rows they reach — while the frontier holds
  /// at most this fraction of all nodes, then switch permanently to the
  /// dense kernels.  0 disables the sparse head (every iteration dense);
  /// 1 stays sparse to convergence.  Results are bitwise-identical at any
  /// setting; this is purely a throughput knob (`bench_kernels --json`
  /// records the measured crossover).
  double frontier_density_threshold = 0.125;
  /// Optional fork-join runner for the dense-tail propagation of RunBatch:
  /// the SpMM scatter is partitioned by destination range, which keeps it
  /// deterministic and bitwise-identical to the serial sweep.  Serial when
  /// null.  Not owned.
  la::TaskRunner* task_runner = nullptr;

  static constexpr int kUnbounded = std::numeric_limits<int>::max();
};

/// Cumulative Power Iteration: interprets RWR as score propagation,
///   x(0) = c·q,   x(i) = (1-c)·Ã^T·x(i-1),   r = Σ_{s_iter ≤ i ≤ t_iter} x(i).
///
/// With a single-entry seed vector this computes RWR; with the uniform seed
/// vector it computes PageRank; with a multi-node seed set, personalized
/// PageRank.  TPA composes three windowed CPI runs (family / neighbor /
/// stranger parts).
///
/// Every entry point is templated over the storage precision tier V of the
/// interim vectors and scores (the T-suffixed variants); it must match the
/// graph's value tier (Graph::value_precision, CHECK-enforced by the CSR
/// accessors).  The V = double instantiations — reachable through the
/// historical non-suffixed names — are bitwise-identical to the
/// pre-precision-tier implementation; V = float runs the whole loop on
/// fp32 storage with fp64 inner-loop arithmetic (see CsrMatrixT).
class Cpi {
 public:
  template <typename V>
  struct ResultT {
    /// The accumulated window sum Σ x(i).
    std::vector<V> scores;
    /// Index of the last iteration whose interim vector was computed.
    int last_iteration = 0;
    /// True when ‖x(i)‖₁ < ε stopped the run (as opposed to t_iter).
    bool converged = false;
    /// ‖x(i)‖₁ at the last computed iteration.
    double last_interim_norm = 0.0;
    /// kCancelled / kDeadlineExceeded when a QueryContext stopped the run
    /// before convergence (the scores then hold the partial window sum
    /// through last_iteration), kOk otherwise.
    StatusCode abort_code = StatusCode::kOk;
    /// Certified L1 bound on ‖scores − converged scores‖₁ when aborted —
    /// the geometric remaining mass of the iterations that never ran
    /// (CpiRemainingMassBound); 0 otherwise.
    double remaining_mass_bound = 0.0;
  };
  using Result = ResultT<double>;
  using ResultF = ResultT<float>;

  /// Reusable scratch of the propagation loop: the interim vectors (scalar
  /// and blocked, at both precision tiers), the frontier lists of the
  /// adaptive head, and the kernel scratch.  Passing one workspace across
  /// queries hoists the full-n allocations a cold run would otherwise make
  /// per query out of the serving loop (buffers are resized once and
  /// recycled; Tpa draws one per concurrent query from its WorkspacePool).
  /// Only the buffers of the tier actually run are ever touched, so a
  /// workspace serving an fp32 Tpa never materializes the fp64 set.  A
  /// workspace serves one run at a time — not thread-safe; results never
  /// alias it.
  struct Workspace {
    std::vector<double> x;
    std::vector<double> next;
    la::DenseBlock block_x;
    la::DenseBlock block_next;
    std::vector<float> x_f;
    std::vector<float> next_f;
    la::DenseBlockF block_x_f;
    la::DenseBlockF block_next_f;
    std::vector<NodeId> frontier;
    std::vector<NodeId> next_frontier;
    la::FrontierScratch scratch;
  };

  /// Runs CPI from a uniform distribution over `seeds` (Algorithm 1 line 1).
  /// Fails on invalid options, empty or out-of-range seeds.
  ///
  /// A non-null `context` is polled at every iteration boundary: on cancel
  /// or deadline expiry the loop stops within one iteration and the result
  /// carries the partial window sum with abort_code and the certified
  /// remaining_mass_bound set (the context's outputs mirror them).
  /// Converting the partial into an error — or serving it degraded — is
  /// the caller's choice; RunT itself always returns the iterate.
  template <typename V>
  static StatusOr<ResultT<V>> RunT(const Graph& graph,
                                   const std::vector<NodeId>& seeds,
                                   const CpiOptions& options,
                                   Workspace* workspace = nullptr,
                                   QueryContext* context = nullptr);
  static StatusOr<Result> Run(const Graph& graph,
                              const std::vector<NodeId>& seeds,
                              const CpiOptions& options,
                              Workspace* workspace = nullptr,
                              QueryContext* context = nullptr) {
    return RunT<double>(graph, seeds, options, workspace, context);
  }

  /// Runs CPI from an arbitrary distribution `q` (‖q‖₁ should be 1; scores
  /// scale linearly otherwise).  The seed vector is multiplied by c
  /// internally, matching x(0) = c·q.
  template <typename V>
  static StatusOr<ResultT<V>> RunWithSeedVectorT(const Graph& graph,
                                                 const std::vector<V>& q,
                                                 const CpiOptions& options,
                                                 Workspace* workspace =
                                                     nullptr);
  static StatusOr<Result> RunWithSeedVector(const Graph& graph,
                                            const std::vector<double>& q,
                                            const CpiOptions& options,
                                            Workspace* workspace = nullptr) {
    return RunWithSeedVectorT<double>(graph, q, options, workspace);
  }

  /// Batched CPI: runs the window for B single-node seeds at once, sharing
  /// one SpMM sweep over the CSR arrays per iteration instead of B
  /// independent SpMv sweeps.  The first iterations run frontier-sparse
  /// over the batch's union frontier, the tail dense (optionally
  /// partition-parallel via options.task_runner).  Vector b of the returned
  /// block is bitwise-identical to RunT(graph, {seeds[b]}, options).scores —
  /// each seed's accumulation stops at exactly the iteration where its own
  /// scalar run would have converged, and the blocked kernels reproduce the
  /// scalar arithmetic per vector (see CsrMatrixT::SpMm*).  Fails on
  /// invalid options, an empty batch, or an out-of-range seed.
  ///
  /// `contexts`, when non-empty, must align index-for-index with `seeds`
  /// (null entries allowed).  An aborting seed is dropped from the batch
  /// through the same per-seed freeze the convergence check uses — it
  /// stops accumulating while the shared SpMM continues for the others —
  /// so its vector is bitwise what the aborted scalar run returns; the
  /// abort is recorded only in its context (a block has no per-vector
  /// status channel).
  template <typename V>
  static StatusOr<la::DenseBlockT<V>> RunBatchT(
      const Graph& graph, std::span<const NodeId> seeds,
      const CpiOptions& options, Workspace* workspace = nullptr,
      std::span<QueryContext* const> contexts = {});
  static StatusOr<la::DenseBlock> RunBatch(
      const Graph& graph, std::span<const NodeId> seeds,
      const CpiOptions& options, Workspace* workspace = nullptr,
      std::span<QueryContext* const> contexts = {}) {
    return RunBatchT<double>(graph, seeds, options, workspace, contexts);
  }

  /// Single-pass windowed CPI: runs to convergence and returns one partial
  /// sum per window, where window w covers iterations
  /// [breakpoints[w], breakpoints[w+1]) and the final window extends to ∞.
  /// E.g. breakpoints {0, S, T} yields exactly the paper's family, neighbor,
  /// and stranger parts in one sweep.  Breakpoints must start at 0 and be
  /// strictly increasing.
  template <typename V>
  static StatusOr<std::vector<std::vector<V>>> RunWindowedT(
      const Graph& graph, const std::vector<V>& q,
      const std::vector<int>& breakpoints, const CpiOptions& options,
      Workspace* workspace = nullptr);
  static StatusOr<std::vector<std::vector<double>>> RunWindowed(
      const Graph& graph, const std::vector<double>& q,
      const std::vector<int>& breakpoints, const CpiOptions& options,
      Workspace* workspace = nullptr) {
    return RunWindowedT<double>(graph, q, breakpoints, options, workspace);
  }

  /// How the bound-driven top-k runner (RunTopKT) behaves.
  struct TopKRunOptions {
    /// Number of ranked results to return (clamped to n).  k = 0 returns an
    /// empty ranking immediately.
    int k = 10;
    /// See TopKQueryOptions::allow_early_termination — when false the
    /// window runs to its natural end and the reported scores are bitwise
    /// those of RunT followed by the base merge and a full top-k sort.
    bool allow_early_termination = true;
  };

  /// Optional merge baseline of the bound-driven runner: the final ranking
  /// is over merged(v) = post_scale·cpi_scores[v] + base[v] (each product
  /// and sum computed in fp64 and rounded to V exactly like la::Scale
  /// followed by la::Axpy — TPA's stranger merge).  `order` must hold all n
  /// node ids sorted by base value descending (ties toward the smaller id);
  /// it lets the runner offer only the k+1 best never-touched nodes instead
  /// of scanning all n.  A null base means merged(v) = cpi_scores[v] with
  /// post_scale applied (PowerIteration: post_scale = 1, no base).
  template <typename V>
  struct TopKBaseT {
    const std::vector<V>* base = nullptr;
    double post_scale = 1.0;
    std::span<const NodeId> order = {};
  };

  /// Bound-driven top-k CPI: runs the same propagation as RunT but tracks
  /// the touched support and, after each iteration, the remaining-mass
  /// upper bound Σ_j ‖x(i)‖₁·(1-c)^j on any node's future gain.  Once the
  /// current k-th candidate beats every other node's upper bound the
  /// ranking is certified and the run stops early (if allowed).  The
  /// returned ranking always equals the full run's top-k (score desc, id
  /// asc); see TopKRunOptions for the score-exactness contract.
  ///
  /// A context abort fails the call with kCancelled / kDeadlineExceeded
  /// (outputs recorded in the context): an uncertified partial ranking has
  /// no meaningful error bound, so top-k never degrades — callers wanting
  /// a partial answer run the dense path.
  template <typename V>
  static StatusOr<TopKQueryResult> RunTopKT(const Graph& graph,
                                            const std::vector<NodeId>& seeds,
                                            const CpiOptions& options,
                                            const TopKRunOptions& topk,
                                            const TopKBaseT<V>& base = {},
                                            Workspace* workspace = nullptr,
                                            QueryContext* context = nullptr);

  /// Convenience: full PageRank vector via CPI with the uniform seed vector.
  static StatusOr<std::vector<double>> PageRank(const Graph& graph,
                                                const CpiOptions& options);

  /// Convenience: exact RWR vector for one seed (runs to convergence).
  static StatusOr<std::vector<double>> ExactRwr(const Graph& graph, NodeId seed,
                                                const CpiOptions& options);
};

/// Number of iterations CPI needs to converge: log_{1-c}(ε/c) (Lemma 4).
int CpiIterationCount(double restart_probability, double tolerance);

/// Certified L1 bound on how far a CPI window sum stopped after
/// `last_iteration` (with interim norm `last_interim_norm`) can be from the
/// window run to its natural end: the substochastic geometric tail
/// Σ_{j=1..left} norm·(1-c)^j over the iterations the window could still
/// have accumulated, where `left` is capped by both the terminal iteration
/// and the convergence horizon floor(log(ε/norm)/log(1-c)) + 1 — the same
/// tail the bound-driven top-k certification uses.  0 when the norm is
/// already below tolerance (the run had converged).
double CpiRemainingMassBound(double last_interim_norm,
                             double restart_probability, double tolerance,
                             int last_iteration, int terminal_iteration);

/// Validates restart probability and tolerance; shared by CPI and TPA.
Status ValidateCpiParameters(double restart_probability, double tolerance);

/// Validates a frontier_density_threshold ([0, 1]); shared by CPI and TPA.
Status ValidateFrontierThreshold(double threshold);

}  // namespace tpa

#endif  // TPA_CORE_CPI_H_
