#include "core/tpa.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <type_traits>

#include "la/vector_ops.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace tpa {

Status ValidateTpaOptions(const TpaOptions& options) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(options.restart_probability,
                                            options.tolerance));
  if (options.family_window < 1) {
    return InvalidArgumentError("family window S must be at least 1");
  }
  if (options.stranger_start <= options.family_window) {
    return InvalidArgumentError("stranger start T must exceed S");
  }
  TPA_RETURN_IF_ERROR(
      ValidateFrontierThreshold(options.frontier_density_threshold));
  TPA_RETURN_IF_ERROR(
      ValidateFrontierThreshold(options.topk_frontier_density_threshold));
  return OkStatus();
}

namespace {

/// All node ids sorted by value descending, ties toward the smaller id —
/// the order TopKSelector ranks equal-scored candidates, so walking it
/// yields the best never-touched candidates first.
template <typename V>
std::vector<NodeId> ArgsortDescending(const std::vector<V>& values) {
  std::vector<NodeId> order(values.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&values](NodeId a, NodeId b) {
    return values[a] != values[b] ? values[a] > values[b] : a < b;
  });
  return order;
}

}  // namespace

template <typename V>
const std::vector<V>& Tpa::StrangerT() const {
  if constexpr (std::is_same_v<V, double>) {
    return stranger_;
  } else {
    return stranger_f_;
  }
}

StatusOr<Tpa> Tpa::Preprocess(const Graph& graph, const TpaOptions& options) {
  TPA_RETURN_IF_ERROR(ValidateTpaOptions(options));

  // Algorithm 2: r̃_stranger = CPI(Ã, {1..n}, c, ε, T, ∞) — the tail of the
  // PageRank series from iteration T on, run and stored at the graph's
  // precision tier.
  CpiOptions cpi;
  cpi.restart_probability = options.restart_probability;
  cpi.tolerance = options.tolerance;
  cpi.start_iteration = options.stranger_start;
  cpi.terminal_iteration = CpiOptions::kUnbounded;
  cpi.use_pull = options.use_pull;
  cpi.frontier_density_threshold = options.frontier_density_threshold;

  if (graph.value_precision() == la::Precision::kFloat64) {
    std::vector<double> uniform(graph.num_nodes(),
                                1.0 / static_cast<double>(graph.num_nodes()));
    TPA_ASSIGN_OR_RETURN(Cpi::Result result,
                         Cpi::RunWithSeedVector(graph, uniform, cpi));
    std::vector<NodeId> order = ArgsortDescending(result.scores);
    return Tpa(&graph, options, std::move(result.scores), {},
               std::move(order));
  }
  std::vector<float> uniform(
      graph.num_nodes(),
      static_cast<float>(1.0 / static_cast<double>(graph.num_nodes())));
  TPA_ASSIGN_OR_RETURN(Cpi::ResultF result,
                       Cpi::RunWithSeedVectorT<float>(graph, uniform, cpi));
  std::vector<NodeId> order = ArgsortDescending(result.scores);
  return Tpa(&graph, options, {}, std::move(result.scores), std::move(order));
}

StatusOr<Tpa> Tpa::FromPreprocessedState(const Graph& graph,
                                         const TpaOptions& options,
                                         std::vector<double> stranger,
                                         std::vector<float> stranger_f,
                                         std::vector<NodeId> stranger_order) {
  TPA_RETURN_IF_ERROR(ValidateTpaOptions(options));
  const size_t n = graph.num_nodes();
  const bool fp64 = graph.value_precision() == la::Precision::kFloat64;
  if (fp64 && (stranger.size() != n || !stranger_f.empty())) {
    return InvalidArgumentError(
        "fp64 preprocessed state requires an n-length fp64 stranger tail "
        "and no fp32 tail");
  }
  if (!fp64 && (stranger_f.size() != n || !stranger.empty())) {
    return InvalidArgumentError(
        "fp32 preprocessed state requires an n-length fp32 stranger tail "
        "and no fp64 tail");
  }
  if (stranger_order.size() != n) {
    return InvalidArgumentError("stranger order must rank all n nodes");
  }
  std::vector<bool> seen(n, false);
  for (const NodeId node : stranger_order) {
    if (node >= n || seen[node]) {
      return InvalidArgumentError(
          "stranger order is not a permutation of the node ids");
    }
    seen[node] = true;
  }
  return Tpa(&graph, options, std::move(stranger), std::move(stranger_f),
             std::move(stranger_order));
}

double Tpa::NeighborScale() const {
  const double decay = 1.0 - options_.restart_probability;
  const double ds = std::pow(decay, options_.family_window);
  const double dt = std::pow(decay, options_.stranger_start);
  return (ds - dt) / (1.0 - ds);
}

CpiOptions Tpa::FamilyCpiOptions() const {
  // Algorithm 3 line 2: r_family = CPI(Ã, {s}, c, ε, 0, S-1).
  CpiOptions cpi;
  cpi.restart_probability = options_.restart_probability;
  cpi.tolerance = options_.tolerance;
  cpi.start_iteration = 0;
  cpi.terminal_iteration = options_.family_window - 1;
  cpi.use_pull = options_.use_pull;
  cpi.frontier_density_threshold = options_.frontier_density_threshold;
  return cpi;
}

Tpa::QueryParts Tpa::QueryDecomposed(NodeId seed) const {
  TPA_CHECK_LT(seed, graph_->num_nodes());
  const CpiOptions cpi = FamilyCpiOptions();

  QueryParts parts;
  WorkspacePool::Lease workspace = workspaces_->Acquire();
  if (precision_ == la::Precision::kFloat64) {
    StatusOr<Cpi::Result> family =
        Cpi::Run(*graph_, {seed}, cpi, workspace.get());
    TPA_CHECK(family.ok());  // options were validated at Preprocess time
    parts.family = std::move(family->scores);
  } else {
    StatusOr<Cpi::ResultF> family =
        Cpi::RunT<float>(*graph_, {seed}, cpi, workspace.get());
    TPA_CHECK(family.ok());
    parts.family = la::ConvertVector<double>(family->scores);
  }

  // Line 3: r̃_neighbor = (‖r_neighbor‖₁/‖r_family‖₁) · r_family.
  parts.neighbor_est = parts.family;
  la::Scale(NeighborScale(), parts.neighbor_est);

  // Line 4: r_TPA = r_family + r̃_neighbor + r̃_stranger.
  parts.total = parts.family;
  la::Axpy(1.0, parts.neighbor_est, parts.total);
  if (precision_ == la::Precision::kFloat64) {
    la::Axpy(1.0, stranger_, parts.total);
  } else {
    // Widen the fp32 stranger tail on the fly (exact per element).
    for (size_t i = 0; i < parts.total.size(); ++i) {
      parts.total[i] += static_cast<double>(stranger_f_[i]);
    }
  }
  return parts;
}

std::vector<double> Tpa::Query(NodeId seed) const {
  TPA_CHECK_LT(seed, graph_->num_nodes());
  // The fused single-seed merge is exactly the personalized query: it skips
  // the materialized neighbor vector of QueryDecomposed — Query is the
  // serving hot path.
  if (precision_ == la::Precision::kFloat64) {
    StatusOr<std::vector<double>> total = QueryPersonalizedT<double>({seed});
    TPA_CHECK(total.ok());  // seed was range-checked above
    return *std::move(total);
  }
  StatusOr<std::vector<float>> total = QueryPersonalizedT<float>({seed});
  TPA_CHECK(total.ok());
  return la::ConvertVector<double>(*total);
}

TopKQueryResult Tpa::QueryTopK(NodeId seed, int k,
                               const TopKQueryOptions& topk_options) const {
  TPA_CHECK_LT(seed, graph_->num_nodes());
  TPA_CHECK_GE(k, 0);
  StatusOr<TopKQueryResult> result =
      QueryTopK(seed, k, topk_options, /*context=*/nullptr);
  TPA_CHECK(result.ok());  // inputs validated above and at Preprocess
  return *std::move(result);
}

StatusOr<TopKQueryResult> Tpa::QueryTopK(NodeId seed, int k,
                                         const TopKQueryOptions& topk_options,
                                         QueryContext* context) const {
  if (seed >= graph_->num_nodes()) {
    return OutOfRangeError("seed node out of range");
  }
  if (k < 0) return InvalidArgumentError("k must be non-negative");
  TPA_FAILPOINT("tpa.workspace_checkout");
  CpiOptions cpi = FamilyCpiOptions();
  cpi.frontier_density_threshold = options_.topk_frontier_density_threshold;
  Cpi::TopKRunOptions run;
  run.k = k;
  run.allow_early_termination = topk_options.allow_early_termination;
  WorkspacePool::Lease workspace = workspaces_->Acquire();
  if (precision_ == la::Precision::kFloat64) {
    Cpi::TopKBaseT<double> base;
    base.base = &stranger_;
    base.post_scale = 1.0 + NeighborScale();
    base.order = stranger_order_;
    return Cpi::RunTopKT<double>(*graph_, {seed}, cpi, run, base,
                                 workspace.get(), context);
  }
  Cpi::TopKBaseT<float> base;
  base.base = &stranger_f_;
  base.post_scale = 1.0 + NeighborScale();
  base.order = stranger_order_;
  return Cpi::RunTopKT<float>(*graph_, {seed}, cpi, run, base,
                              workspace.get(), context);
}

std::vector<float> Tpa::QueryF(NodeId seed) const {
  TPA_CHECK(precision_ == la::Precision::kFloat32);
  TPA_CHECK_LT(seed, graph_->num_nodes());
  StatusOr<std::vector<float>> total = QueryPersonalizedT<float>({seed});
  TPA_CHECK(total.ok());
  return *std::move(total);
}

template <typename V>
StatusOr<la::DenseBlockT<V>> Tpa::QueryBatchT(
    std::span<const NodeId> seeds,
    std::span<QueryContext* const> contexts) const {
  TPA_FAILPOINT("tpa.workspace_checkout");
  CpiOptions cpi = FamilyCpiOptions();
  cpi.task_runner = options_.task_runner;
  WorkspacePool::Lease workspace = workspaces_->Acquire();
  TPA_ASSIGN_OR_RETURN(
      la::DenseBlockT<V> block,
      Cpi::RunBatchT<V>(*graph_, seeds, cpi, workspace.get(), contexts));

  // The same fused merge as QueryPersonalized, blocked:
  // total = (1 + scale)·family + stranger per vector.
  la::BlockScale(1.0 + NeighborScale(), block);
  la::BlockAddVector(1.0, StrangerT<V>(), block);
  // An aborted seed's family bound propagates through the merge scaled by
  // (1 + scale); the stranger add is exact, so the scaled bound certifies
  // the returned vector.
  for (QueryContext* context : contexts) {
    if (context != nullptr && context->aborted) {
      context->error_bound *= 1.0 + NeighborScale();
    }
  }
  return block;
}

StatusOr<la::DenseBlock> Tpa::QueryBatch(
    std::span<const NodeId> seeds,
    std::span<QueryContext* const> contexts) const {
  if (precision_ == la::Precision::kFloat64) {
    return QueryBatchT<double>(seeds, contexts);
  }
  TPA_ASSIGN_OR_RETURN(la::DenseBlockF block,
                       QueryBatchT<float>(seeds, contexts));
  la::DenseBlock wide;
  la::ConvertBlock(block, wide);
  return wide;
}

StatusOr<la::DenseBlockF> Tpa::QueryBatchF(
    std::span<const NodeId> seeds,
    std::span<QueryContext* const> contexts) const {
  TPA_CHECK(precision_ == la::Precision::kFloat32);
  return QueryBatchT<float>(seeds, contexts);
}

template <typename V>
StatusOr<std::vector<V>> Tpa::QueryPersonalizedT(
    const std::vector<NodeId>& seeds, QueryContext* context) const {
  TPA_FAILPOINT("tpa.workspace_checkout");
  const CpiOptions cpi = FamilyCpiOptions();
  WorkspacePool::Lease workspace = workspaces_->Acquire();
  TPA_ASSIGN_OR_RETURN(
      Cpi::ResultT<V> family,
      Cpi::RunT<V>(*graph_, seeds, cpi, workspace.get(), context));

  std::vector<V> total = std::move(family.scores);
  // total = (1 + scale)·family + stranger, by the same Algorithm 3 merge.
  la::Scale(1.0 + NeighborScale(), total);
  la::Axpy(1.0, StrangerT<V>(), total);
  if (context != nullptr && context->aborted) {
    // As in QueryBatchT: the family bound through the merge's post-scale.
    context->error_bound *= 1.0 + NeighborScale();
  }
  return total;
}

StatusOr<std::vector<double>> Tpa::QueryPersonalized(
    const std::vector<NodeId>& seeds, QueryContext* context) const {
  if (precision_ == la::Precision::kFloat64) {
    return QueryPersonalizedT<double>(seeds, context);
  }
  TPA_ASSIGN_OR_RETURN(std::vector<float> total,
                       QueryPersonalizedT<float>(seeds, context));
  return la::ConvertVector<double>(total);
}

StatusOr<std::vector<float>> Tpa::QueryPersonalizedF(
    const std::vector<NodeId>& seeds, QueryContext* context) const {
  if (precision_ != la::Precision::kFloat32) {
    return FailedPreconditionError(
        "QueryPersonalizedF requires an fp32 graph");
  }
  return QueryPersonalizedT<float>(seeds, context);
}

double StrangerErrorBound(double restart_probability, int stranger_start) {
  return 2.0 * std::pow(1.0 - restart_probability, stranger_start);
}

double NeighborErrorBound(double restart_probability, int family_window,
                          int stranger_start) {
  const double decay = 1.0 - restart_probability;
  return 2.0 * std::pow(decay, family_window) -
         2.0 * std::pow(decay, stranger_start);
}

double TotalErrorBound(double restart_probability, int family_window) {
  return 2.0 * std::pow(1.0 - restart_probability, family_window);
}

}  // namespace tpa
