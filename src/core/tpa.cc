#include "core/tpa.h"

#include <cmath>

#include "la/vector_ops.h"
#include "util/check.h"

namespace tpa {

Status ValidateTpaOptions(const TpaOptions& options) {
  TPA_RETURN_IF_ERROR(ValidateCpiParameters(options.restart_probability,
                                            options.tolerance));
  if (options.family_window < 1) {
    return InvalidArgumentError("family window S must be at least 1");
  }
  if (options.stranger_start <= options.family_window) {
    return InvalidArgumentError("stranger start T must exceed S");
  }
  TPA_RETURN_IF_ERROR(
      ValidateFrontierThreshold(options.frontier_density_threshold));
  return OkStatus();
}

StatusOr<Tpa> Tpa::Preprocess(const Graph& graph, const TpaOptions& options) {
  TPA_RETURN_IF_ERROR(ValidateTpaOptions(options));

  // Algorithm 2: r̃_stranger = CPI(Ã, {1..n}, c, ε, T, ∞) — the tail of the
  // PageRank series from iteration T on.
  CpiOptions cpi;
  cpi.restart_probability = options.restart_probability;
  cpi.tolerance = options.tolerance;
  cpi.start_iteration = options.stranger_start;
  cpi.terminal_iteration = CpiOptions::kUnbounded;
  cpi.use_pull = options.use_pull;
  cpi.frontier_density_threshold = options.frontier_density_threshold;

  std::vector<double> uniform(graph.num_nodes(),
                              1.0 / static_cast<double>(graph.num_nodes()));
  TPA_ASSIGN_OR_RETURN(Cpi::Result result,
                       Cpi::RunWithSeedVector(graph, uniform, cpi));
  return Tpa(&graph, options, std::move(result.scores));
}

double Tpa::NeighborScale() const {
  const double decay = 1.0 - options_.restart_probability;
  const double ds = std::pow(decay, options_.family_window);
  const double dt = std::pow(decay, options_.stranger_start);
  return (ds - dt) / (1.0 - ds);
}

Tpa::QueryParts Tpa::QueryDecomposed(NodeId seed) const {
  TPA_CHECK_LT(seed, graph_->num_nodes());

  // Algorithm 3 line 2: r_family = CPI(Ã, {s}, c, ε, 0, S-1).
  CpiOptions cpi;
  cpi.restart_probability = options_.restart_probability;
  cpi.tolerance = options_.tolerance;
  cpi.start_iteration = 0;
  cpi.terminal_iteration = options_.family_window - 1;
  cpi.use_pull = options_.use_pull;
  cpi.frontier_density_threshold = options_.frontier_density_threshold;

  WorkspacePool::Lease workspace = workspaces_->Acquire();
  StatusOr<Cpi::Result> family =
      Cpi::Run(*graph_, {seed}, cpi, workspace.get());
  TPA_CHECK(family.ok());  // options were validated at Preprocess time

  QueryParts parts;
  parts.family = std::move(family->scores);

  // Line 3: r̃_neighbor = (‖r_neighbor‖₁/‖r_family‖₁) · r_family.
  parts.neighbor_est = parts.family;
  la::Scale(NeighborScale(), parts.neighbor_est);

  // Line 4: r_TPA = r_family + r̃_neighbor + r̃_stranger.
  parts.total = parts.family;
  la::Axpy(1.0, parts.neighbor_est, parts.total);
  la::Axpy(1.0, stranger_, parts.total);
  return parts;
}

std::vector<double> Tpa::Query(NodeId seed) const {
  TPA_CHECK_LT(seed, graph_->num_nodes());
  // The fused single-seed merge is exactly the personalized query: it skips
  // the materialized neighbor vector of QueryDecomposed — Query is the
  // serving hot path.
  StatusOr<std::vector<double>> total = QueryPersonalized({seed});
  TPA_CHECK(total.ok());  // seed was range-checked above
  return *std::move(total);
}

StatusOr<la::DenseBlock> Tpa::QueryBatch(std::span<const NodeId> seeds) const {
  CpiOptions cpi;
  cpi.restart_probability = options_.restart_probability;
  cpi.tolerance = options_.tolerance;
  cpi.start_iteration = 0;
  cpi.terminal_iteration = options_.family_window - 1;
  cpi.use_pull = options_.use_pull;
  cpi.frontier_density_threshold = options_.frontier_density_threshold;
  cpi.task_runner = options_.task_runner;
  WorkspacePool::Lease workspace = workspaces_->Acquire();
  TPA_ASSIGN_OR_RETURN(la::DenseBlock block,
                       Cpi::RunBatch(*graph_, seeds, cpi, workspace.get()));

  // The same fused merge as QueryPersonalized, blocked:
  // total = (1 + scale)·family + stranger per vector.
  la::BlockScale(1.0 + NeighborScale(), block);
  la::BlockAddVector(1.0, stranger_, block);
  return block;
}

StatusOr<std::vector<double>> Tpa::QueryPersonalized(
    const std::vector<NodeId>& seeds) const {
  CpiOptions cpi;
  cpi.restart_probability = options_.restart_probability;
  cpi.tolerance = options_.tolerance;
  cpi.start_iteration = 0;
  cpi.terminal_iteration = options_.family_window - 1;
  cpi.use_pull = options_.use_pull;
  cpi.frontier_density_threshold = options_.frontier_density_threshold;
  WorkspacePool::Lease workspace = workspaces_->Acquire();
  TPA_ASSIGN_OR_RETURN(Cpi::Result family,
                       Cpi::Run(*graph_, seeds, cpi, workspace.get()));

  std::vector<double> total = std::move(family.scores);
  // total = (1 + scale)·family + stranger, by the same Algorithm 3 merge.
  la::Scale(1.0 + NeighborScale(), total);
  la::Axpy(1.0, stranger_, total);
  return total;
}

double StrangerErrorBound(double restart_probability, int stranger_start) {
  return 2.0 * std::pow(1.0 - restart_probability, stranger_start);
}

double NeighborErrorBound(double restart_probability, int family_window,
                          int stranger_start) {
  const double decay = 1.0 - restart_probability;
  return 2.0 * std::pow(decay, family_window) -
         2.0 * std::pow(decay, stranger_start);
}

double TotalErrorBound(double restart_probability, int family_window) {
  return 2.0 * std::pow(1.0 - restart_probability, family_window);
}

}  // namespace tpa
