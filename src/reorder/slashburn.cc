#include "reorder/slashburn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace tpa {

namespace {

/// Union-find over node ids, path halving + union by size.
class DisjointSets {
 public:
  explicit DisjointSets(NodeId n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  NodeId Find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(NodeId a, NodeId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

  NodeId ComponentSize(NodeId x) { return size_[Find(x)]; }

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeId> size_;
};

enum class NodeState : uint8_t { kActive, kSpoke, kHub };

}  // namespace

StatusOr<HubSpokeOrdering> SlashBurn(const Graph& graph,
                                     const SlashBurnOptions& options) {
  return SlashBurn(graph.num_nodes(), graph.OutOffsets(), graph.OutTargets(),
                   options);
}

StatusOr<HubSpokeOrdering> SlashBurn(NodeId num_nodes,
                                     std::span<const uint64_t> out_offsets,
                                     std::span<const NodeId> out_targets,
                                     const SlashBurnOptions& options) {
  TPA_CHECK_EQ(out_offsets.size(), static_cast<size_t>(num_nodes) + 1);
  TPA_CHECK_EQ(out_offsets.back(), out_targets.size());
  // The adjacency walk the whole algorithm is built from.
  const auto out_neighbors = [&](NodeId u) {
    return out_targets.subspan(out_offsets[u],
                               out_offsets[u + 1] - out_offsets[u]);
  };
  if (options.hub_fraction_per_round <= 0.0 ||
      options.hub_fraction_per_round > 1.0) {
    return InvalidArgumentError("hub_fraction_per_round must be in (0,1]");
  }
  if (options.max_spoke_size == 0) {
    return InvalidArgumentError("max_spoke_size must be positive");
  }
  if (options.max_hub_fraction <= 0.0 || options.max_hub_fraction > 1.0) {
    return InvalidArgumentError("max_hub_fraction must be in (0,1]");
  }

  const NodeId n = num_nodes;
  const NodeId hubs_per_round = std::max<NodeId>(
      1, static_cast<NodeId>(std::ceil(options.hub_fraction_per_round *
                                       static_cast<double>(n))));
  const NodeId max_hubs = std::max<NodeId>(
      1, static_cast<NodeId>(std::ceil(options.max_hub_fraction *
                                       static_cast<double>(n))));

  std::vector<NodeState> state(n, NodeState::kActive);
  std::vector<NodeId> hubs;                       // in removal order
  std::vector<std::vector<NodeId>> spoke_blocks;  // finalized blocks
  NodeId num_active = n;

  std::vector<NodeId> degree(n);
  std::vector<NodeId> order(n);

  while (num_active > 0) {
    // Finalize small leftovers in one block.
    if (num_active <= options.max_spoke_size) {
      std::vector<NodeId> block;
      block.reserve(num_active);
      for (NodeId u = 0; u < n; ++u) {
        if (state[u] == NodeState::kActive) {
          state[u] = NodeState::kSpoke;
          block.push_back(u);
        }
      }
      spoke_blocks.push_back(std::move(block));
      break;
    }

    // Hub budget exhausted: everything unresolved becomes a hub.
    if (hubs.size() + hubs_per_round > max_hubs) {
      for (NodeId u = 0; u < n; ++u) {
        if (state[u] == NodeState::kActive) {
          state[u] = NodeState::kHub;
          hubs.push_back(u);
        }
      }
      break;
    }

    // Undirected degree within the active subgraph.
    std::fill(degree.begin(), degree.end(), NodeId{0});
    for (NodeId u = 0; u < n; ++u) {
      if (state[u] != NodeState::kActive) continue;
      for (NodeId v : out_neighbors(u)) {
        if (u == v || state[v] != NodeState::kActive) continue;
        ++degree[u];
        ++degree[v];
      }
    }

    // Remove the top-k active nodes by degree.
    std::vector<NodeId>& cand = order;
    cand.clear();
    for (NodeId u = 0; u < n; ++u) {
      if (state[u] == NodeState::kActive) cand.push_back(u);
    }
    const size_t k = std::min<size_t>(hubs_per_round, cand.size());
    std::partial_sort(cand.begin(), cand.begin() + static_cast<long>(k),
                      cand.end(), [&degree](NodeId a, NodeId b) {
                        if (degree[a] != degree[b]) {
                          return degree[a] > degree[b];
                        }
                        return a < b;
                      });
    for (size_t i = 0; i < k; ++i) {
      state[cand[i]] = NodeState::kHub;
      hubs.push_back(cand[i]);
      --num_active;
    }

    // Undirected connected components of what remains active.
    DisjointSets dsu(n);
    for (NodeId u = 0; u < n; ++u) {
      if (state[u] != NodeState::kActive) continue;
      for (NodeId v : out_neighbors(u)) {
        if (u == v || state[v] != NodeState::kActive) continue;
        dsu.Union(u, v);
      }
    }

    // Group active nodes by root; finalize components <= max_spoke_size.
    std::vector<std::vector<NodeId>> members_by_root(n);
    for (NodeId u = 0; u < n; ++u) {
      if (state[u] == NodeState::kActive) {
        members_by_root[dsu.Find(u)].push_back(u);
      }
    }
    for (NodeId root = 0; root < n; ++root) {
      auto& members = members_by_root[root];
      if (members.empty()) continue;
      if (members.size() <= options.max_spoke_size) {
        for (NodeId u : members) state[u] = NodeState::kSpoke;
        num_active -= static_cast<NodeId>(members.size());
        spoke_blocks.push_back(std::move(members));
      }
      // Larger components stay active and get burned again.
    }
  }

  // Emit the ordering: spoke blocks first, hubs last.
  HubSpokeOrdering result;
  result.old_of_new.reserve(n);
  result.blocks.reserve(spoke_blocks.size());
  for (const auto& block : spoke_blocks) {
    const NodeId begin = static_cast<NodeId>(result.old_of_new.size());
    result.old_of_new.insert(result.old_of_new.end(), block.begin(),
                             block.end());
    result.blocks.emplace_back(begin,
                               static_cast<NodeId>(result.old_of_new.size()));
  }
  result.num_spokes = static_cast<NodeId>(result.old_of_new.size());
  result.old_of_new.insert(result.old_of_new.end(), hubs.begin(), hubs.end());
  TPA_CHECK_EQ(result.old_of_new.size(), static_cast<size_t>(n));

  result.new_of_old.assign(n, 0);
  for (NodeId p = 0; p < n; ++p) {
    result.new_of_old[result.old_of_new[p]] = p;
  }
  return result;
}

}  // namespace tpa
