#ifndef TPA_REORDER_SLASHBURN_H_
#define TPA_REORDER_SLASHBURN_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tpa {

/// Options for the hub-and-spoke reordering.
struct SlashBurnOptions {
  /// Nodes removed as hubs per round, as a fraction of total nodes
  /// (SlashBurn's k parameter).
  double hub_fraction_per_round = 0.005;
  /// Connected components no larger than this are finalized as spoke blocks;
  /// larger ones are burned again next round.
  NodeId max_spoke_size = 512;
  /// Safety cap: when the hub set would exceed this fraction of all nodes,
  /// every still-unresolved node is moved into the hub part.  Graphs without
  /// hub structure therefore surface as a large hub block — which is exactly
  /// when the block-elimination methods blow up, as in the paper.
  double max_hub_fraction = 0.25;
};

/// Result of SlashBurn: a permutation placing spoke blocks first and hubs
/// last, so that the reordered H = I − (1-c)Ã^T has block-diagonal H11.
///
/// Positions [0, num_spokes) in the new ordering are spokes, grouped into
/// contiguous connected-component blocks (no edges, in either direction,
/// connect two different spoke blocks); positions [num_spokes, n) are hubs.
struct HubSpokeOrdering {
  /// old_of_new[p] = original node id placed at new position p.
  std::vector<NodeId> old_of_new;
  /// new_of_old[u] = new position of original node u.
  std::vector<NodeId> new_of_old;
  /// Half-open [begin, end) position ranges of the spoke blocks.
  std::vector<std::pair<NodeId, NodeId>> blocks;
  NodeId num_spokes = 0;

  NodeId num_hubs() const {
    return static_cast<NodeId>(old_of_new.size()) - num_spokes;
  }
};

/// Runs SlashBurn-style iterative hub removal on the undirected view of
/// `graph`.  Deterministic.  Fails on invalid options.
StatusOr<HubSpokeOrdering> SlashBurn(const Graph& graph,
                                     const SlashBurnOptions& options);

/// Adjacency-view overload: the same algorithm over raw out-CSR index
/// arrays (`out_offsets` has num_nodes+1 monotone entries indexing
/// `out_targets`).  The algorithm only walks out-neighbors, so callers
/// that have not built a Graph — GraphBuilder ordering its cleaned edge
/// list — avoid the throwaway CSR build (in-edges, weights, validation)
/// entirely.  The Graph overload delegates here; identical results.
StatusOr<HubSpokeOrdering> SlashBurn(NodeId num_nodes,
                                     std::span<const uint64_t> out_offsets,
                                     std::span<const NodeId> out_targets,
                                     const SlashBurnOptions& options);

}  // namespace tpa

#endif  // TPA_REORDER_SLASHBURN_H_
