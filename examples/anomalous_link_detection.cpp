/// Anomalous-link detection via RWR proximity (the neighborhood-formation
/// framing of Sun et al., cited by the paper as an RWR application).
///
///   $ ./example_anomalous_link_detection
///
/// Generates a community-structured graph, injects random cross-community
/// "anomalous" edges, and scores each of a node's out-links by the RWR
/// proximity of its endpoint.  Legit (within-community) links score high;
/// the injected links land at the bottom of the ranking.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/tpa.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "util/random.h"

int main() {
  tpa::DcsbmOptions generator;
  generator.nodes = 3000;
  generator.edges = 30000;
  generator.blocks = 12;
  generator.intra_fraction = 0.92;
  generator.seed = 11;
  auto base = tpa::GenerateDcsbm(generator);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }

  // Re-build the graph with injected anomalies from a few chosen sources.
  const tpa::NodeId block_size =
      (generator.nodes + generator.blocks - 1) / generator.blocks;
  tpa::Rng rng(99);
  tpa::GraphBuilder builder(base->num_nodes());
  for (tpa::NodeId u = 0; u < base->num_nodes(); ++u) {
    for (tpa::NodeId v : base->OutNeighbors(u)) builder.AddEdge(u, v);
  }
  const tpa::NodeId suspect = 100;
  std::vector<tpa::NodeId> injected;
  while (injected.size() < 5) {
    const auto target =
        static_cast<tpa::NodeId>(rng.NextBounded(base->num_nodes()));
    if (target / block_size == suspect / block_size) continue;  // same block
    injected.push_back(target);
    builder.AddEdge(suspect, target);
  }
  auto graph = builder.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  auto engine = tpa::Tpa::Preprocess(*graph, {});
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::vector<double> proximity = engine->Query(suspect);

  // Rank the suspect's out-links by endpoint proximity, ascending: the
  // least-proximate endpoints are the anomaly candidates.
  auto neighbors = graph->OutNeighbors(suspect);
  std::vector<tpa::NodeId> ranked(neighbors.begin(), neighbors.end());
  std::sort(ranked.begin(), ranked.end(),
            [&proximity](tpa::NodeId a, tpa::NodeId b) {
              return proximity[a] < proximity[b];
            });

  std::printf("node %u has %zu out-links; 5 injected cross-community "
              "anomalies\n",
              suspect, ranked.size());
  std::printf("links ranked by endpoint RWR proximity (lowest = most "
              "anomalous):\n");
  size_t hits_in_bottom5 = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    const bool is_injected =
        std::find(injected.begin(), injected.end(), ranked[i]) !=
        injected.end();
    if (i < 8) {
      std::printf("  %2zu. -> %-7u score %.2e %s\n", i + 1, ranked[i],
                  proximity[ranked[i]], is_injected ? "  <-- injected" : "");
    }
    if (i < 5 && is_injected) ++hits_in_bottom5;
  }
  std::printf("\ninjected links among the 5 most anomalous: %zu/5\n",
              hits_in_bottom5);
  return hits_in_bottom5 >= 4 ? 0 : 1;
}
