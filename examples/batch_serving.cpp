/// Batch serving: the paper's client–server scenario.  Preprocess TPA once,
/// then serve many concurrent seed queries through the QueryEngine — top-k
/// results, a fixed thread pool, an LRU cache for repeated seeds, and the
/// batch-first SpMM path that serves a whole group of seeds with one shared
/// traversal of the CSR arrays (QueryBatchDense / batch_block_size).
///
///   $ ./example_batch_serving

#include <cstdio>
#include <memory>
#include <vector>

#include "engine/query_engine.h"
#include "graph/generators.h"
#include "method/tpa_method.h"
#include "util/stopwatch.h"

int main() {
  // A mid-size community-structured graph standing in for the shared
  // production graph.
  tpa::DcsbmOptions graph_options;
  graph_options.nodes = 20'000;
  graph_options.edges = 200'000;
  graph_options.blocks = 40;
  graph_options.seed = 7;
  auto graph = tpa::GenerateDcsbm(graph_options);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %u nodes, %llu edges\n", graph->num_nodes(),
              static_cast<unsigned long long>(graph->num_edges()));

  // The engine owns the method: Create runs TPA's one-time preprocessing
  // (Algorithm 2) and spins up the worker pool.  Every batch afterwards
  // reuses the shared immutable preprocessed state.
  tpa::QueryEngineOptions options;
  options.num_threads = 4;
  options.top_k = 5;          // clients want ranked recommendations, not
                              // 20k-entry dense vectors
  options.cache_capacity = 100;
  auto engine = tpa::QueryEngine::Create(
      *graph, std::make_unique<tpa::TpaMethod>(), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("engine: %s, %d worker threads, top-%d, cache %zu entries\n\n",
              std::string(engine->method().name()).c_str(),
              engine->num_threads(), options.top_k, options.cache_capacity);

  // One incoming batch of user queries (note user 123 appears twice — the
  // second occurrence is a cache candidate).
  const std::vector<tpa::NodeId> batch = {123, 4567, 8910, 15000, 123, 19999};
  auto results = engine->QueryBatch(batch);

  for (const tpa::QueryResult& result : results) {
    if (!result.status.ok()) {
      std::printf("seed %u: error %s\n", result.seed,
                  result.status.ToString().c_str());
      continue;
    }
    std::printf("seed %u%s → top-%zu:", result.seed,
                result.from_cache ? " (cached)" : "", result.top.size());
    for (const tpa::ScoredNode& entry : result.top) {
      std::printf("  %u:%.5f", entry.node, entry.score);
    }
    std::printf("\n");
  }

  // A repeat batch is served from the LRU cache without touching the solver.
  auto repeat = engine->QueryBatch(batch);
  int cached = 0;
  for (const auto& result : repeat) cached += result.from_cache ? 1 : 0;
  const auto stats = engine->cache_stats();
  std::printf("\nrepeat batch: %d/%zu served from cache "
              "(engine totals: %llu hits, %llu misses)\n",
              cached, repeat.size(),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));

  // The SpMM path: TPA supports native batched queries (QueryBatchDense),
  // so cache-miss seeds are served in groups of batch_block_size — every
  // group shares one traversal of the Ã^T CSR arrays instead of walking
  // them once per seed.  Compare against the per-seed fan-out
  // (batch_block_size = 0) on one uncached 32-seed batch.  Which side wins
  // depends on the regime: traversal sharing pays when the CSR arrays dwarf
  // the last-level cache or cores contend for bandwidth; on a small
  // cache-resident graph like this one, per-seed queries keep their
  // frontier sparsity and typically stay ahead (see README "Batched
  // serving").
  std::vector<tpa::NodeId> burst;
  for (tpa::NodeId s = 0; s < 32; ++s) burst.push_back(s * 601 + 7);

  tpa::QueryEngineOptions per_seed_options;
  per_seed_options.num_threads = 4;
  per_seed_options.batch_block_size = 0;  // per-seed fan-out baseline
  auto per_seed = tpa::QueryEngine::Create(
      *graph, std::make_unique<tpa::TpaMethod>(), per_seed_options);
  if (!per_seed.ok()) return 1;
  tpa::Stopwatch per_seed_watch;
  per_seed->QueryBatch(burst);
  const double per_seed_seconds = per_seed_watch.ElapsedSeconds();

  tpa::QueryEngineOptions spmm_options;
  spmm_options.num_threads = 4;
  spmm_options.batch_block_size = 16;  // two SpMM groups for 32 seeds
  auto spmm = tpa::QueryEngine::Create(
      *graph, std::make_unique<tpa::TpaMethod>(), spmm_options);
  if (!spmm.ok()) return 1;
  tpa::Stopwatch spmm_watch;
  spmm->QueryBatch(burst);
  const double spmm_seconds = spmm_watch.ElapsedSeconds();

  std::printf(
      "\n32-seed burst, dense results (identical bitwise either way):\n"
      "  per-seed fan-out:           %6.1f queries/s\n"
      "  spmm groups (block=16):     %6.1f queries/s  (%.2fx)\n",
      burst.size() / per_seed_seconds, burst.size() / spmm_seconds,
      per_seed_seconds / spmm_seconds);
  return 0;
}
