/// Local community detection by RWR sweep cut — the classic Andersen/
/// Chung/Lang use of personalized PageRank that the paper cites as an RWR
/// application (community detection, Section I).
///
///   $ ./example_community_detection
///
/// Generates a DCSBM graph with planted communities, computes the RWR
/// vector of a seed with TPA, sorts nodes by degree-normalized score, and
/// sweeps a prefix cut minimizing conductance.  The recovered set is
/// compared against the seed's planted community.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/tpa.h"
#include "graph/generators.h"

namespace {

/// Conductance of the node set marked by `in_set`: cut edges / min(vol, v̄ol).
double Conductance(const tpa::Graph& graph, const std::vector<bool>& in_set) {
  uint64_t cut = 0, vol = 0, total_vol = 2 * graph.num_edges();
  for (tpa::NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (!in_set[u]) continue;
    vol += graph.OutDegree(u) + graph.InDegree(u);
    for (tpa::NodeId v : graph.OutNeighbors(u)) {
      if (!in_set[v]) ++cut;
    }
    for (tpa::NodeId v : graph.InNeighbors(u)) {
      if (!in_set[v]) ++cut;
    }
  }
  const uint64_t smaller = std::min(vol, total_vol - vol);
  return smaller == 0 ? 1.0
                      : static_cast<double>(cut) / static_cast<double>(smaller);
}

}  // namespace

int main() {
  tpa::DcsbmOptions generator;
  generator.nodes = 4000;
  generator.edges = 36000;
  generator.blocks = 16;  // planted communities of 250 nodes
  generator.intra_fraction = 0.9;
  generator.seed = 7;
  auto graph = tpa::GenerateDcsbm(generator);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const tpa::NodeId block_size =
      (generator.nodes + generator.blocks - 1) / generator.blocks;

  auto engine = tpa::Tpa::Preprocess(*graph, {});
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  const tpa::NodeId seed = 1000;  // inside planted community 4
  const tpa::NodeId planted = seed / block_size;
  std::vector<double> scores = engine->Query(seed);

  // Sweep cut over nodes ranked by score / degree.
  std::vector<tpa::NodeId> order;
  for (tpa::NodeId v = 0; v < graph->num_nodes(); ++v) {
    if (scores[v] > 0.0) order.push_back(v);
  }
  std::sort(order.begin(), order.end(),
            [&](tpa::NodeId a, tpa::NodeId b) {
              const double da = std::max(1u, graph->OutDegree(a));
              const double db = std::max(1u, graph->OutDegree(b));
              return scores[a] / da > scores[b] / db;
            });

  std::vector<bool> in_set(graph->num_nodes(), false);
  std::vector<bool> best_set;
  double best_conductance = 1.0;
  size_t best_size = 0;
  const size_t sweep_limit = std::min<size_t>(order.size(), 2 * block_size);
  for (size_t i = 0; i < sweep_limit; ++i) {
    in_set[order[i]] = true;
    if (i < 8) continue;  // skip degenerate tiny prefixes
    const double phi = Conductance(*graph, in_set);
    if (phi < best_conductance) {
      best_conductance = phi;
      best_size = i + 1;
      best_set = in_set;
    }
  }

  // Compare the best sweep set against the planted community.
  size_t overlap = 0;
  for (tpa::NodeId v = planted * block_size;
       v < std::min<tpa::NodeId>(graph->num_nodes(),
                                 (planted + 1) * block_size);
       ++v) {
    if (best_set[v]) ++overlap;
  }
  std::printf("seed %u lives in planted community %u (%u nodes)\n", seed,
              planted, block_size);
  std::printf("sweep cut found %zu nodes at conductance %.3f\n", best_size,
              best_conductance);
  std::printf("overlap with planted community: %zu/%u (%.1f%%), precision "
              "%.1f%%\n",
              overlap, block_size,
              100.0 * overlap / block_size,
              100.0 * overlap / best_size);
  return best_conductance < 0.5 ? 0 : 1;
}
