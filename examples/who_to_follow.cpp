/// "Who to Follow": RWR-based recommendation, the application the paper
/// cites from Twitter's WTF service (Section IV-B3).
///
///   $ ./example_who_to_follow
///
/// Generates a social-network stand-in, picks a user, and recommends the
/// top-k nodes by approximate RWR, excluding existing followees.  Also
/// reports recall against the exact top-k — the paper's Figure 7 metric.

#include <algorithm>
#include <cstdio>
#include <set>

#include "core/cpi.h"
#include "core/tpa.h"
#include "eval/metrics.h"
#include "graph/presets.h"
#include "la/vector_ops.h"
#include "util/stopwatch.h"

int main() {
  auto spec = tpa::FindDatasetSpec("pokec-sim");
  if (!spec.ok()) return 1;
  auto graph = tpa::MakePresetGraph(*spec, /*scale=*/0.2);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("social graph: %u users, %llu follow edges\n",
              graph->num_nodes(),
              static_cast<unsigned long long>(graph->num_edges()));

  tpa::TpaOptions options;
  options.family_window = spec->s;
  options.stranger_start = spec->t;
  tpa::Stopwatch preprocess_timer;
  auto tpa_engine = tpa::Tpa::Preprocess(*graph, options);
  if (!tpa_engine.ok()) {
    std::fprintf(stderr, "%s\n", tpa_engine.status().ToString().c_str());
    return 1;
  }
  std::printf("TPA preprocessing: %.3f s (done once per graph)\n",
              preprocess_timer.ElapsedSeconds());

  const tpa::NodeId user = 123;
  std::set<tpa::NodeId> already_following;
  for (tpa::NodeId v : graph->OutNeighbors(user)) {
    already_following.insert(v);
  }

  tpa::Stopwatch query_timer;
  std::vector<double> scores = tpa_engine->Query(user);
  const double query_seconds = query_timer.ElapsedSeconds();

  constexpr size_t kTopK = 10;
  std::printf("\nuser %u follows %zu accounts; top-%zu recommendations "
              "(%.4f s query):\n",
              user, already_following.size(), kTopK, query_seconds);
  std::vector<size_t> ranked = tpa::la::TopKIndices(scores, kTopK + 50);
  size_t shown = 0;
  for (size_t candidate : ranked) {
    const auto node = static_cast<tpa::NodeId>(candidate);
    if (node == user || already_following.count(node) != 0) continue;
    std::printf("  %2zu. user %-8u (score %.5f)\n", shown + 1, node,
                scores[candidate]);
    if (++shown == kTopK) break;
  }

  // Quality check against the exact ranking.
  tpa::CpiOptions exact_options;
  exact_options.tolerance = 1e-12;
  auto exact = tpa::Cpi::ExactRwr(*graph, user, exact_options);
  if (!exact.ok()) return 1;
  std::printf("\nrecall@100 vs exact RWR: %.3f\n",
              tpa::RecallAtK(scores, *exact, 100));
  return 0;
}
