/// Quickstart: build a small graph, preprocess TPA once, answer RWR queries.
///
///   $ ./example_quickstart
///
/// Walks through the whole public API surface in ~60 lines: GraphBuilder,
/// Tpa::Preprocess / Query, and a comparison against exact CPI.

#include <cstdio>

#include "core/cpi.h"
#include "core/tpa.h"
#include "graph/builder.h"
#include "la/vector_ops.h"

int main() {
  // A two-community toy graph: triangle {0,1,2} and triangle {3,4,5},
  // bridged by 2→3 and 5→0.
  tpa::GraphBuilder builder(6);
  const std::pair<tpa::NodeId, tpa::NodeId> edges[] = {
      {0, 1}, {1, 2}, {2, 0}, {1, 0}, {2, 1}, {0, 2},  // community A
      {3, 4}, {4, 5}, {5, 3}, {4, 3}, {5, 4}, {3, 5},  // community B
      {2, 3}, {5, 0},                                  // bridges
  };
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  auto graph = builder.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %u nodes, %llu edges\n", graph->num_nodes(),
              static_cast<unsigned long long>(graph->num_edges()));

  // Preprocess once per graph (Algorithm 2): computes the PageRank tail.
  tpa::TpaOptions options;
  options.family_window = 3;   // S
  options.stranger_start = 6;  // T
  auto tpa = tpa::Tpa::Preprocess(*graph, options);
  if (!tpa.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 tpa.status().ToString().c_str());
    return 1;
  }

  // Query any seed (Algorithm 3) — here node 0.
  const tpa::NodeId seed = 0;
  std::vector<double> approx = tpa->Query(seed);

  // Exact RWR via converged CPI, for comparison.
  auto exact = tpa::Cpi::ExactRwr(*graph, seed, {});
  if (!exact.ok()) {
    std::fprintf(stderr, "exact failed: %s\n",
                 exact.status().ToString().c_str());
    return 1;
  }

  std::printf("\nRWR scores from seed %u (c = %.2f):\n", seed,
              options.restart_probability);
  std::printf("%6s %12s %12s\n", "node", "TPA", "exact");
  for (tpa::NodeId v = 0; v < graph->num_nodes(); ++v) {
    std::printf("%6u %12.6f %12.6f\n", v, approx[v], (*exact)[v]);
  }
  std::printf("\nL1 error %.4f (Theorem 2 bound: %.4f)\n",
              tpa::la::L1Distance(approx, *exact),
              tpa::TotalErrorBound(options.restart_probability,
                                   options.family_window));
  std::printf("note: nodes 0-2 (the seed's community) dominate, as they "
              "should.\n");
  return 0;
}
