/// Async serving: one engine multiplexing many independent clients through
/// the admission queue — per-query Submit/ticket instead of the blocking
/// QueryBatch latch.  Demonstrates completion callbacks, deadlines,
/// client-side cancellation, and the queue-full backpressure policies,
/// with opportunistic SpMM coalescing happening underneath.
///
///   $ ./example_async_serving

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "engine/async_query_engine.h"
#include "graph/generators.h"
#include "method/tpa_method.h"

int main() {
  tpa::DcsbmOptions graph_options;
  graph_options.nodes = 20'000;
  graph_options.edges = 200'000;
  graph_options.blocks = 40;
  graph_options.seed = 7;
  auto graph = tpa::GenerateDcsbm(graph_options);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }

  // Engine side: preprocessing runs once in Create; the admission queue
  // bounds how many requests may wait, and misses are coalesced into SpMM
  // groups of batch_block_size as they queue up.
  tpa::QueryEngineOptions engine_options;
  engine_options.num_threads = 4;
  engine_options.top_k = 3;
  engine_options.cache_capacity = 100;
  engine_options.batch_block_size = 8;
  tpa::AsyncQueryEngineOptions async_options;
  async_options.queue_capacity = 256;
  async_options.queue_full_policy = tpa::QueueFullPolicy::kBlock;
  auto engine = tpa::AsyncQueryEngine::Create(
      *graph, std::make_unique<tpa::TpaMethod>(), engine_options,
      async_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("async engine up: %d workers, queue capacity %zu\n\n",
              (*engine)->engine().num_threads(), async_options.queue_capacity);

  // Client side: fire a burst of queries without waiting for any of them;
  // completion callbacks deliver the results as they land.
  std::atomic<int> delivered{0};
  tpa::SubmitOptions fire_and_forget;
  fire_and_forget.on_complete = [&](const tpa::QueryResult& result) {
    if (result.status.ok() && !result.top.empty()) {
      delivered.fetch_add(1);
    }
  };
  std::vector<tpa::QueryTicket> tickets;
  for (tpa::NodeId seed = 0; seed < 64; ++seed) {
    tickets.push_back((*engine)->Submit(seed * 300, fire_and_forget));
  }

  // A latency-sensitive client attaches a deadline: if the queue cannot get
  // to it in time, it fails fast with DEADLINE_EXCEEDED instead of serving
  // a stale answer.
  tpa::SubmitOptions urgent;
  urgent.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  tpa::QueryTicket urgent_ticket = (*engine)->Submit(123, urgent);

  // Another client changes its mind while still queued.
  tpa::QueryTicket undecided = (*engine)->Submit(456);
  const bool cancelled = undecided.Cancel();

  const tpa::QueryResult& urgent_result = urgent_ticket.Wait();
  std::printf("urgent query: %s\n",
              urgent_result.status.ok()
                  ? "served within deadline"
                  : urgent_result.status.ToString().c_str());
  std::printf("cancel while queued: %s\n",
              cancelled ? "cancelled before serving"
                        : "too late - already being served");

  for (tpa::QueryTicket& ticket : tickets) {
    const tpa::QueryResult& result = ticket.Wait();
    if (!result.status.ok()) {
      std::fprintf(stderr, "seed %u failed: %s\n", result.seed,
                   result.status.ToString().c_str());
      return 1;
    }
  }
  std::printf("burst of %zu queries served; callbacks delivered %d\n",
              tickets.size(), delivered.load());

  const auto stats = (*engine)->stats();
  std::printf(
      "stats: %llu submitted, %llu served, %llu cancelled, %llu expired\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.expired));
  if (stats.groups_dispatched > 0) {
    std::printf("coalescing: %.2f seeds per dispatched group on average\n",
                static_cast<double>(stats.seeds_dispatched) /
                    static_cast<double>(stats.groups_dispatched));
  }

  // Destruction shuts down cleanly: admissions stop, everything already
  // admitted is served, then the engine joins its scheduler and pool.
  return 0;
}
